package solver

import (
	"context"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/hetero"
	"replicatree/internal/lp"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
)

// Built-in engine names. Every algorithm the repository implements is
// registered here; consumers dispatch by name via Lookup/List.
const (
	SingleGen      = "single-gen"      // Algorithm 1, (Δ+1)-approx, Single
	SingleNoD      = "single-nod"      // Algorithm 2, 2-approx, Single-NoD
	SinglePassUp   = "single-passup"   // pass-up variant of Algorithm 2, Single-NoD
	SingleBest     = "single-best"     // min(single-nod, single-passup)
	SinglePushUp   = "single-pushup"   // single-nod + push-up post-pass
	MultipleBin    = "multiple-bin"    // Algorithm 3 (eager), Multiple, binary trees
	MultipleLazy   = "multiple-lazy"   // lazy variant of Algorithm 3
	MultipleBest   = "multiple-best"   // min(multiple-bin, multiple-lazy)
	MultipleGreedy = "multiple-greedy" // general-arity generalisation of Algorithm 3
	MultipleReplan = "multiple-replan" // churn-minimising adaptation of a previous placement
	ExactSingle    = "exact-single"    // optimal Single branch-and-bound
	ExactMultiple  = "exact-multiple"  // optimal Multiple set search + max-flow
	LPRound        = "lp-round"        // LP relaxation support rounding, Multiple
	HeteroGreedy   = "hetero-greedy"   // heterogeneous greedy at uniform capacity
	HeteroExact    = "hetero-exact"    // heterogeneous exact at uniform capacity
	Auto           = "auto"            // capability-driven portfolio over the registry

	// Decomp is the subtree decomposition engine for huge trees. It
	// lives in internal/decomp (which imports this package, so it
	// registers itself from its own init); link it with a blank import
	// where it is wanted. Auto routes to it by name when present.
	Decomp = "decomp"
)

// lpRoundMaxNodes caps lp-round in portfolios: the simplex tableau is
// quadratic in the tree, so on huge instances it is the memory hog
// the decomp route exists to avoid.
const lpRoundMaxNodes = 4096

// caps is a terse Capabilities constructor for the built-in table.
func caps(name string, pol core.Policy, exact, dmax, het bool, cost CostClass, desc string) Capabilities {
	return Capabilities{
		Name: name, Policy: pol, Exact: exact,
		SupportsDMax: dmax, Hetero: het, Cost: cost, Description: desc,
	}
}

// sized stamps a size ceiling onto a capability document (see
// Capabilities.MaxNodes).
func sized(c Capabilities, maxNodes int) Capabilities {
	c.MaxNodes = maxNodes
	return c
}

// plain adapts the repository's prevailing context-less algorithm
// signature to an engine solve function (no work tracking).
func plain(fn func(*core.Instance) (*core.Solution, error)) func(context.Context, Request) (*core.Solution, int64, error) {
	return func(_ context.Context, req Request) (*core.Solution, int64, error) {
		sol, err := fn(req.Instance)
		return sol, 0, err
	}
}

// warmable pairs a cold solve function with its warm-path session
// twin. When the request lends a Scratch and the instance ingests
// cleanly, the solve runs on the scratch's reusable buffers — zero
// heap allocations once warm, session-owned solution. Any ingest
// failure (an invalid instance) falls back to the cold function,
// which reproduces the validation error verbatim.
func warmable(cold func(*core.Instance) (*core.Solution, error), warm func(*Scratch) (*core.Solution, error)) func(context.Context, Request) (*core.Solution, int64, error) {
	return func(_ context.Context, req Request) (*core.Solution, int64, error) {
		if sc := req.Scratch; sc != nil && sc.ingest(req.Instance) == nil {
			sol, err := warm(sc)
			return sol, 0, err
		}
		sol, err := cold(req.Instance)
		return sol, 0, err
	}
}

// exactFn adapts the exact branch-and-bound solvers, threading
// Request.Budget into exact.Options and the consumed steps back into
// Report.Work.
func exactFn(fn func(*core.Instance, exact.Options) (*core.Solution, error)) func(context.Context, Request) (*core.Solution, int64, error) {
	return func(_ context.Context, req Request) (*core.Solution, int64, error) {
		var work int64
		sol, err := fn(req.Instance, exact.Options{Budget: req.Budget, Work: &work})
		return sol, work, err
	}
}

func init() {
	poly, expo := CostPolynomial, CostExponential
	MustRegisterEngine(NewEngine(
		caps(SingleGen, core.Single, false, true, false, poly, "Algorithm 1: greedy bottom-up, (Δ+1)-approximation"),
		warmable(single.Gen, func(sc *Scratch) (*core.Solution, error) { return sc.single.Gen() })))
	MustRegisterEngine(NewEngine(
		caps(SingleNoD, core.Single, false, false, false, poly, "Algorithm 2: 2-approximation for Single without distance bound"),
		warmable(single.NoD, func(sc *Scratch) (*core.Solution, error) { return sc.single.NoD() })))
	MustRegisterEngine(NewEngine(
		caps(SinglePassUp, core.Single, false, false, false, poly, "pass-up variant of Algorithm 2"),
		plain(single.NoDPassUp)))
	MustRegisterEngine(NewEngine(
		caps(SingleBest, core.Single, false, false, false, poly, "min(single-nod, single-passup)"),
		plain(single.NoDBest)))
	MustRegisterEngine(NewEngine(
		caps(SinglePushUp, core.Single, false, false, false, poly, "single-nod followed by the push-up post-pass"),
		plain(func(in *core.Instance) (*core.Solution, error) {
			sol, err := single.NoD(in)
			if err != nil {
				return nil, err
			}
			return single.PushUp(in, sol), nil
		})))
	MustRegisterEngine(NewEngine(
		caps(MultipleBin, core.Multiple, false, true, false, poly, "Algorithm 3 (eager): optimal on binary trees with ri ≤ W"),
		warmable(multiple.Bin, func(sc *Scratch) (*core.Solution, error) { return sc.multiple.Bin() })))
	MustRegisterEngine(NewEngine(
		caps(MultipleLazy, core.Multiple, false, true, false, poly, "lazy variant of Algorithm 3"),
		warmable(multiple.Lazy, func(sc *Scratch) (*core.Solution, error) { return sc.multiple.Lazy() })))
	MustRegisterEngine(NewEngine(
		caps(MultipleBest, core.Multiple, false, true, false, poly, "min(multiple-bin, multiple-lazy)"),
		warmable(multiple.Best, func(sc *Scratch) (*core.Solution, error) { return sc.multiple.Best() })))
	MustRegisterEngine(NewEngine(
		caps(MultipleGreedy, core.Multiple, false, true, false, poly, "general-arity generalisation of Algorithm 3"),
		warmable(multiple.Greedy, func(sc *Scratch) (*core.Solution, error) { return sc.multiple.Greedy() })))
	MustRegisterEngine(NewDeltaEngine(
		caps(MultipleReplan, core.Multiple, false, true, false, poly, "adapt a previous placement with minimal churn (delta engine)"),
		func(_ context.Context, req Request) (*core.Solution, *multiple.Churn, int64, error) {
			prev := req.Previous
			if prev == nil {
				// Replanning from nothing is a plain greedy build-up;
				// the churn then counts every placement as new.
				prev = &core.Solution{}
			}
			sol, churn, err := multiple.ReplanExcluding(req.Instance, prev, req.Exclude)
			if err != nil {
				return nil, nil, 0, err
			}
			return sol, &churn, 0, nil
		}))
	MustRegisterEngine(NewEngine(
		sized(caps(ExactSingle, core.Single, true, true, false, expo, "optimal Single via branch-and-bound over assignments"), autoExactMaxNodes),
		exactFn(exact.SolveSingle)))
	MustRegisterEngine(NewEngine(
		sized(caps(ExactMultiple, core.Multiple, true, true, false, expo, "optimal Multiple via set enumeration with a max-flow oracle"), autoExactMaxNodes),
		exactFn(exact.SolveMultiple)))
	MustRegisterEngine(NewEngine(
		sized(caps(LPRound, core.Multiple, false, true, false, poly, "LP relaxation support rounding"), lpRoundMaxNodes),
		func(_ context.Context, req Request) (*core.Solution, int64, error) {
			if sc := req.Scratch; sc != nil && sc.ingest(req.Instance) == nil {
				if s, ok := sc.lpSession(); ok {
					sol, err := s.Placement()
					return sol, 0, err
				}
			}
			sol, err := lp.Placement(req.Instance)
			return sol, 0, err
		}))
	MustRegisterEngine(NewEngine(
		caps(HeteroGreedy, core.Multiple, false, true, true, poly, "heterogeneous greedy, run at uniform capacity"),
		plain(func(in *core.Instance) (*core.Solution, error) {
			return hetero.Greedy(hetero.FromUniform(in))
		})))
	MustRegisterEngine(NewEngine(
		sized(caps(HeteroExact, core.Multiple, true, true, true, expo, "heterogeneous exact search, run at uniform capacity"), autoExactMaxNodes),
		func(_ context.Context, req Request) (*core.Solution, int64, error) {
			sol, err := hetero.Solve(hetero.FromUniform(req.Instance), req.Budget)
			return sol, 0, err
		}))
	MustRegisterEngine(newAutoEngine())
}
