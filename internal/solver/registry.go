package solver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry maps engine names to implementations plus their
// capability documents. Built-in engines register at package init;
// extensions may RegisterEngine more (a sharded backend, a cached
// front, a new policy) without touching consumers.
var (
	regMu    sync.RWMutex
	registry = make(map[string]*regEntry)
)

// regEntry pairs an engine with its lazily shared v1 shim, so Get
// returns a stable Solver identity for a given name.
type regEntry struct {
	eng  Engine
	shim *engineSolver
}

// RegisterEngine adds an engine under its name. Empty names, nil
// engines and duplicate names are rejected: a silent overwrite would
// let two packages fight over a name and make golden results
// unreproducible.
func RegisterEngine(e Engine) error {
	if e == nil {
		return fmt.Errorf("solver: RegisterEngine(nil)")
	}
	name := e.Name()
	if name == "" {
		return fmt.Errorf("solver: Register with empty name")
	}
	if caps := e.Capabilities(); caps.Name != name {
		return fmt.Errorf("solver: engine %q declares capabilities for %q", name, caps.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("solver: duplicate registration of %q", name)
	}
	registry[name] = &regEntry{eng: e, shim: &engineSolver{eng: e}}
	return nil
}

// MustRegisterEngine is RegisterEngine for init-time use; it panics on
// error.
func MustRegisterEngine(e Engine) {
	if err := RegisterEngine(e); err != nil {
		panic(err)
	}
}

// Lookup returns the engine registered under name. The error wraps
// ErrUnknownSolver and lists the registered set, so CLI typos are
// self-diagnosing and services can map it to 404 with errors.Is.
func Lookup(name string) (Engine, error) {
	regMu.RLock()
	entry, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (known: %s)", ErrUnknownSolver, name, strings.Join(List(), ", "))
	}
	return entry.eng, nil
}

// MustLookup is Lookup for names the caller knows are built-in.
func MustLookup(name string) Engine {
	e, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return e
}

// Engines returns the registered engines in List() order.
func Engines() []Engine {
	names := List()
	out := make([]Engine, len(names))
	regMu.RLock()
	for i, name := range names {
		out[i] = registry[name].eng
	}
	regMu.RUnlock()
	return out
}

// Catalog returns every registered engine's capability document in
// List() order — the typed replacement for probing PolicyProvider /
// ExactProvider per solver.
func Catalog() []Capabilities {
	engines := Engines()
	out := make([]Capabilities, len(engines))
	for i, e := range engines {
		out[i] = e.Capabilities()
	}
	return out
}

// List returns the registered engine names, sorted.
func List() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}

// Register adds a v1 Solver under its name, deriving its capability
// document from the deprecated optional interfaces.
//
// Deprecated: implement Engine and use RegisterEngine, which makes
// the policy, cost class and distance support explicit.
func Register(s Solver) error {
	if s == nil {
		return fmt.Errorf("solver: Register(nil)")
	}
	if s.Name() == "" {
		return fmt.Errorf("solver: Register with empty name")
	}
	return RegisterEngine(AsEngine(s))
}

// MustRegister is Register for init-time use; it panics on error.
//
// Deprecated: use MustRegisterEngine.
func MustRegister(s Solver) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns the solver registered under name as a v1 Solver shim.
//
// Deprecated: use Lookup; the returned Engine's Report carries the
// bound/gap/proof metadata this shim discards.
func Get(name string) (Solver, error) {
	regMu.RLock()
	entry, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (known: %s)", ErrUnknownSolver, name, strings.Join(List(), ", "))
	}
	return entry.shim, nil
}

// MustGet is Get for names the caller knows are built-in.
//
// Deprecated: use MustLookup.
func MustGet(name string) Solver {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Solvers returns the registered solvers as v1 shims in List() order.
//
// Deprecated: use Engines or Catalog.
func Solvers() []Solver {
	names := List()
	out := make([]Solver, len(names))
	regMu.RLock()
	for i, name := range names {
		out[i] = registry[name].shim
	}
	regMu.RUnlock()
	return out
}
