package solver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry maps solver names to implementations. Built-in solvers
// register at package init; extensions may Register more (a sharded
// backend, a cached front, a new policy) without touching consumers.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Solver)
)

// Register adds a solver under its name. Empty names, nil solvers and
// duplicate names are rejected: a silent overwrite would let two
// packages fight over a name and make golden results unreproducible.
func Register(s Solver) error {
	if s == nil {
		return fmt.Errorf("solver: Register(nil)")
	}
	name := s.Name()
	if name == "" {
		return fmt.Errorf("solver: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("solver: duplicate registration of %q", name)
	}
	registry[name] = s
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(s Solver) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns the solver registered under name. The error of an
// unknown name lists the registered set, so CLI typos are
// self-diagnosing.
func Get(name string) (Solver, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solver: unknown solver %q (known: %s)", name, strings.Join(List(), ", "))
	}
	return s, nil
}

// MustGet is Get for names the caller knows are built-in.
func MustGet(name string) Solver {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// List returns the registered solver names, sorted.
func List() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}

// Solvers returns the registered solvers in List() order.
func Solvers() []Solver {
	names := List()
	out := make([]Solver, len(names))
	regMu.RLock()
	for i, name := range names {
		out[i] = registry[name]
	}
	regMu.RUnlock()
	return out
}
