package solver

import (
	"context"
	"fmt"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/multiple"
	"replicatree/internal/tree"
)

// This file is the v2 solver contract: a typed Request/Report pair
// around a single Engine interface, plus the Capabilities document
// every engine publishes through the registry. The v1 Solver contract
// (solver.go) survives as a thin deprecated shim over it.

// Want expresses a Request's access-policy constraint.
type Want uint8

const (
	// AnyPolicy accepts whatever policy the engine solves.
	AnyPolicy Want = iota
	// WantSingle requires a solution obeying the Single policy.
	WantSingle
	// WantMultiple requires a solution obeying the Multiple policy.
	// Single-policy solutions qualify too (Single is a restriction of
	// Multiple), so WantMultiple admits every engine.
	WantMultiple
)

// Allows reports whether an engine solving policy p can satisfy the
// constraint.
func (w Want) Allows(p core.Policy) bool {
	switch w {
	case WantSingle:
		return p == core.Single
	case WantMultiple:
		// A Single-policy solution never splits a client, so it is
		// feasible under Multiple's relaxed rules as well.
		return true
	default:
		return true
	}
}

// String implements fmt.Stringer.
func (w Want) String() string {
	switch w {
	case WantSingle:
		return "Single"
	case WantMultiple:
		return "Multiple"
	default:
		return "Any"
	}
}

// Request is everything a caller can ask of an engine. The zero value
// plus an Instance is a plain unconstrained solve; every other field
// tightens or annotates it. It replaces the former idiom of optional
// interfaces plus context-value smuggling (WithBudget).
type Request struct {
	// Instance is the problem to solve. Required.
	Instance *core.Instance
	// Policy constrains the access policy of the solution. The zero
	// value (AnyPolicy) accepts the engine's native policy.
	Policy Want
	// Budget caps the elementary work of budget-aware (exact) engines;
	// 0 keeps their default. It subsumes the deprecated WithBudget
	// context idiom, which engines still honour as a fallback.
	Budget int64
	// Deadline, when non-zero, bounds the wall-clock time of the solve
	// via the context.
	Deadline time.Time
	// Hints carries free-form engine-specific advice. Engines must
	// ignore hints they do not understand. Recognised today:
	// "no-lower-bound" (any value) skips the Report's lower-bound/gap
	// computation on hot paths, and the auto engine's "exact" hint
	// ("force"/"skip") overrides its size gate for exact candidates.
	Hints map[string]string
	// Scratch, when non-nil, lends the engine reusable working memory
	// for the warm solve path: the polynomial built-ins then solve on
	// pooled session buffers with zero heap allocations once warm.
	// The Report's Solution is owned by the scratch and valid only
	// until its next solve — clone it before PutScratch. Engines
	// without a warm path ignore the field. A Scratch must never be
	// shared across concurrent requests.
	Scratch *Scratch
	// Previous, when non-nil, hands a delta-capable engine
	// (Capabilities.Delta) the placement it should adapt instead of
	// solving from scratch; the engine minimises churn against it and
	// reports the churn in Report.Churn. Non-delta engines ignore it.
	Previous *core.Solution
	// Exclude lists nodes that must not host replicas (failed
	// servers). Only delta-capable engines honour it; handing a
	// non-empty Exclude to any other engine is a typed
	// ErrPolicyUnsupported, not a silent drop of the constraint.
	Exclude []tree.NodeID
}

// Hint returns the named hint, or "" when unset.
func (r Request) Hint(name string) string {
	return r.Hints[name]
}

// Report is the full outcome of one solve: the solution plus the
// uniform quality metadata (bound, gap, optimality proof, work) that
// consumers previously re-derived ad hoc.
type Report struct {
	// Solution is the verified-feasible placement.
	Solution *core.Solution
	// Policy is the access policy the solution obeys. For a portfolio
	// engine this is the winning candidate's policy, which may be
	// stricter than the engine's declared capability.
	Policy core.Policy
	// LowerBound is core.LowerBound of the instance; Gap is
	// (replicas − LowerBound) / LowerBound, 0 when the bound is met or
	// unavailable. Both are 0 under the "no-lower-bound" hint.
	LowerBound int
	Gap        float64
	// Work counts the elementary search steps of budget-aware engines
	// (node expansions / feasibility checks); 0 when not tracked.
	Work int64
	// Proved reports that the solution is provably optimal for the
	// reported policy.
	Proved bool
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
	// Engine names the engine that produced the solution — equal to
	// the dispatched name except under the auto portfolio, which
	// reports the winning candidate.
	Engine string
	// Churn, set only by delta-capable engines adapting a
	// Request.Previous placement, quantifies the re-placement cost:
	// replicas added/removed and request volume that changed servers.
	// Nil everywhere else.
	Churn *multiple.Churn
}

// Engine is the v2 solver contract. Implementations must be safe for
// concurrent use; Batch and the HTTP service call them from many
// goroutines.
type Engine interface {
	Name() string
	Capabilities() Capabilities
	Solve(ctx context.Context, req Request) (Report, error)
}

// CostClass is the coarse complexity class of an engine, used by the
// auto portfolio to decide which candidates are affordable.
type CostClass uint8

const (
	// CostUnknown marks engines registered through the deprecated v1
	// shim, which declares no cost.
	CostUnknown CostClass = iota
	// CostPolynomial engines are safe on instances of any size.
	CostPolynomial
	// CostExponential engines (branch-and-bound, set enumeration) are
	// budget-bounded and only affordable on small instances.
	CostExponential
)

// String implements fmt.Stringer.
func (c CostClass) String() string {
	switch c {
	case CostPolynomial:
		return "polynomial"
	case CostExponential:
		return "exponential"
	default:
		return "unknown"
	}
}

// Capabilities is the registry's typed description of one engine. It
// replaces the PolicyProvider/ExactProvider type-assertion dance: a
// consumer reads one document instead of probing optional interfaces,
// and a missing declaration is an explicit CostUnknown/zero field
// rather than a silent default.
type Capabilities struct {
	// Name is the registry name.
	Name string
	// Policy is the access policy of the engine's solutions.
	Policy core.Policy
	// Exact engines return provably optimal solutions (within budget).
	Exact bool
	// SupportsDMax engines handle finite distance bounds; the NoD
	// family does not and rejects distance-constrained instances.
	SupportsDMax bool
	// Hetero engines specialise in heterogeneous capacities (they
	// accept uniform instances but duplicate the uniform engines, so
	// portfolios skip them).
	Hetero bool
	// Cost is the engine's complexity class.
	Cost CostClass
	// Delta engines adapt a Request.Previous placement (minimising
	// churn, honouring Request.Exclude) instead of optimising replica
	// count from scratch; portfolios skip them — stability is a
	// different objective than minimality.
	Delta bool
	// MaxNodes is the largest instance (total tree nodes) the engine
	// is sized for; portfolios drop it from the candidate set above
	// that. 0 means unbounded — notably the decomp engine, which
	// exists precisely for instances everything else is too small for.
	MaxNodes int
	// Description is a one-line human summary for catalogues.
	Description string
}

// engineCore is the shared implementation behind every built-in
// engine: it validates the request, enforces the capability gates
// (policy constraint, distance support), threads budget and deadline,
// classifies failures onto the sentinel errors and fills the uniform
// Report fields around the wrapped solve function.
type engineCore struct {
	caps Capabilities
	// fn returns the solution plus the elementary work performed
	// (0 when untracked). It sees the normalized request: Instance
	// non-nil, Budget resolved against the deprecated context idiom.
	fn func(ctx context.Context, req Request) (*core.Solution, int64, error)
	// deltaFn, set only on Delta engines, additionally returns the
	// churn against Request.Previous for Report.Churn.
	deltaFn func(ctx context.Context, req Request) (*core.Solution, *multiple.Churn, int64, error)
}

// NewEngine wraps a solve function and its capability document as a
// registrable Engine. The returned engine enforces the documented
// gates, so fn can assume a non-nil instance that passed them.
func NewEngine(caps Capabilities, fn func(ctx context.Context, req Request) (*core.Solution, int64, error)) Engine {
	return &engineCore{caps: caps, fn: fn}
}

// NewDeltaEngine wraps a delta solve function — one that adapts
// Request.Previous and reports churn — as a registrable Engine.
// caps.Delta is forced true so the registry document matches the
// behaviour.
func NewDeltaEngine(caps Capabilities, fn func(ctx context.Context, req Request) (*core.Solution, *multiple.Churn, int64, error)) Engine {
	caps.Delta = true
	return &engineCore{caps: caps, deltaFn: fn}
}

func (e *engineCore) Name() string               { return e.caps.Name }
func (e *engineCore) Capabilities() Capabilities { return e.caps }
func (e *engineCore) String() string             { return e.caps.Name }

func (e *engineCore) Solve(ctx context.Context, req Request) (Report, error) {
	begin := time.Now()
	rep := Report{Engine: e.caps.Name, Policy: e.caps.Policy}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if req.Instance == nil {
		return rep, fmt.Errorf("solver %s: nil instance", e.caps.Name)
	}
	if !req.Policy.Allows(e.caps.Policy) {
		return rep, tag(fmt.Errorf("solver %s: solves %s, request requires %s",
			e.caps.Name, e.caps.Policy, req.Policy), ErrPolicyUnsupported)
	}
	if !e.caps.SupportsDMax && !req.Instance.NoD() {
		// Same text the requireNoD gate used pre-v2, now carrying the
		// sentinel for typed handling.
		return rep, tag(fmt.Errorf("solver %s: requires a NoD instance (dmax=%d is finite)",
			e.caps.Name, req.Instance.DMax), ErrPolicyUnsupported)
	}
	if len(req.Exclude) > 0 && !e.caps.Delta {
		// An excluded-server constraint silently dropped would return a
		// "feasible" placement on a failed node; fail typed instead.
		return rep, tag(fmt.Errorf("solver %s: cannot honour excluded servers (delta engines only)",
			e.caps.Name), ErrPolicyUnsupported)
	}
	if req.Budget <= 0 {
		req.Budget = BudgetFrom(ctx) // deprecated context idiom, still honoured
	}
	if !req.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, req.Deadline)
		defer cancel()
		// Re-check before dispatch: many wrapped algorithms run to
		// completion without polling the context, so an already-expired
		// deadline must fail fast here.
		if err := ctx.Err(); err != nil {
			return rep, err
		}
	}
	var (
		sol   *core.Solution
		churn *multiple.Churn
		work  int64
		err   error
	)
	if e.deltaFn != nil {
		sol, churn, work, err = e.deltaFn(ctx, req)
	} else {
		sol, work, err = e.fn(ctx, req)
	}
	rep.Work = work
	rep.Churn = churn
	rep.Elapsed = time.Since(begin)
	if err != nil {
		if !req.Instance.Feasible(e.caps.Policy) {
			err = tag(err, ErrInfeasible)
		}
		return rep, err
	}
	rep.Solution = sol
	rep.Proved = e.caps.Exact
	fillBound(&rep, req)
	rep.Elapsed = time.Since(begin)
	return rep, nil
}

// fillBound computes the uniform lower-bound/gap block of a successful
// report, unless the request's "no-lower-bound" hint suppresses it.
// When the request's scratch is bound to the instance it uses the
// scratch's flat-tree tables (same value, zero allocations); the
// equality is pinned by TestScratchLowerBoundMatchesCold.
func fillBound(rep *Report, req Request) {
	if rep.Solution == nil || req.Hint("no-lower-bound") != "" {
		return
	}
	if sc := req.Scratch; sc != nil && sc.in == req.Instance {
		rep.LowerBound = sc.bound.LowerBound(&sc.flat, req.Instance)
	} else {
		rep.LowerBound = core.LowerBound(req.Instance)
	}
	if rep.LowerBound > 0 {
		rep.Gap = float64(rep.Solution.NumReplicas()-rep.LowerBound) / float64(rep.LowerBound)
	}
}

// AsEngine adapts any v1 Solver to the Engine contract. Solvers
// obtained from the registry unwrap back to their native engine;
// foreign solvers are wrapped with capabilities derived from the
// deprecated optional interfaces (Policy defaulting to Single, cost
// unknown — the explicit spelling of what PolicyOf used to assume
// silently).
func AsEngine(s Solver) Engine {
	if es, ok := s.(*engineSolver); ok {
		return es.eng
	}
	return NewEngine(Capabilities{
		Name:         s.Name(),
		Policy:       PolicyOf(s),
		Exact:        IsExact(s),
		SupportsDMax: true,
		Cost:         CostUnknown,
		Description:  "externally registered v1 solver",
	}, func(ctx context.Context, req Request) (*core.Solution, int64, error) {
		// Re-smuggle the budget for solvers still reading BudgetFrom.
		sol, err := s.Solve(WithBudget(ctx, req.Budget), req.Instance)
		return sol, 0, err
	})
}

// engineSolver adapts an Engine to the deprecated v1 Solver contract;
// Get returns these so legacy consumers keep compiling.
type engineSolver struct {
	eng Engine
}

func (s *engineSolver) Name() string        { return s.eng.Name() }
func (s *engineSolver) Policy() core.Policy { return s.eng.Capabilities().Policy }
func (s *engineSolver) Exact() bool         { return s.eng.Capabilities().Exact }
func (s *engineSolver) String() string      { return s.eng.Name() }

func (s *engineSolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	rep, err := s.eng.Solve(ctx, Request{Instance: in})
	return rep.Solution, err
}
