package solver

import (
	"sync"

	"replicatree/internal/core"
	"replicatree/internal/lp"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
	"replicatree/internal/tree"
)

// Scratch is the reusable working memory of the warm solve path. A
// request that lends one (Request.Scratch) lets the polynomial
// built-in engines — single-gen, single-nod, the multiple-* family and
// lp-round — run on pooled session buffers instead of fresh heap:
// after the first solve has grown the buffers, a warm solve on an
// already-ingested instance performs zero heap allocations and returns
// the same Report the cold path would (the session parity tests in
// internal/single, internal/multiple and internal/lp pin solution
// equality; the TestAllocs gate pins the allocation count).
//
// Ingestion is implicit: each warm-capable engine ingests the
// request's instance on first sight, validating it once and building
// the flat SoA twin plus the per-algorithm sessions. Re-solving the
// same *core.Instance (same tree pointer, W and DMax) skips ingestion
// entirely — that is the hot path.
//
// Ownership rules:
//   - A Scratch is NOT safe for concurrent use. Never share one
//     across goroutines (the auto portfolio deliberately strips it
//     from its candidate requests for this reason).
//   - Report.Solution from a warm solve points into the scratch and
//     is valid only until the next solve on it. Clone the solution
//     before releasing the scratch with PutScratch.
type Scratch struct {
	// Ingest key: pointer identity of the instance and its tree plus
	// the scalar knobs, so a mutated-in-place instance re-ingests.
	in   *core.Instance
	tr   *tree.Tree
	w    int64
	dmax int64

	flat     tree.Flat
	bound    core.Scratch // fillBound's alloc-free LowerBound tables
	single   single.Session
	multiple multiple.Session

	// The LP relaxation is the one ingest product that is expensive to
	// build (it materialises the simplex problem), so it is constructed
	// lazily on the first lp-round solve of each ingested instance.
	lp      lp.Session
	lpBound bool // lp.Reset ran for the current instance
	lpOK    bool // ... and succeeded
}

// NewScratch returns a fresh unpooled Scratch. Most callers should
// prefer GetScratch/PutScratch, which amortise buffer growth across
// solves process-wide.
func NewScratch() *Scratch { return new(Scratch) }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a Scratch from the process-wide pool. Return it
// with PutScratch when the solve's solution has been copied out.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the pool. The caller must not touch
// the scratch — including any session-owned Solution obtained from it
// — after the call.
func PutScratch(sc *Scratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}

// ingest binds the scratch to the instance, validating it and
// (re)building the flat twin and the sessions. Re-ingesting the
// instance the scratch is already bound to is free. Ingestion may
// allocate (buffer growth, LP matrices); only the subsequent solves
// are allocation-free.
func (sc *Scratch) ingest(in *core.Instance) error {
	if sc.in == in && sc.tr == in.Tree && sc.w == in.W && sc.dmax == in.DMax {
		return nil
	}
	sc.in = nil // stay unbound if validation fails
	if err := in.Validate(); err != nil {
		return err
	}
	tree.FlattenInto(&sc.flat, in.Tree)
	sc.single.Reset(in, &sc.flat)
	sc.multiple.Reset(in, &sc.flat)
	sc.lpBound = false
	sc.in, sc.tr, sc.w, sc.dmax = in, in.Tree, in.W, in.DMax
	return nil
}

// lpSession returns the lazily-ingested LP session, or ok=false when
// the relaxation could not be built (the caller then falls back to the
// cold path, which reproduces the build error verbatim).
func (sc *Scratch) lpSession() (*lp.Session, bool) {
	if !sc.lpBound {
		sc.lpBound = true
		sc.lpOK = sc.lp.Reset(sc.in, &sc.flat) == nil
	}
	return &sc.lp, sc.lpOK
}
