package solver

import "errors"

// Sentinel errors of the v2 API. Engines and the registry wrap them
// with context, so classify with errors.Is rather than string
// matching; the HTTP service maps each to a dedicated status.
var (
	// ErrUnknownSolver: the requested name is not in the registry
	// (HTTP 404).
	ErrUnknownSolver = errors.New("solver: unknown solver")
	// ErrPolicyUnsupported: the engine cannot satisfy the request's
	// constraints — a policy it does not solve, or a distance-bounded
	// instance handed to a NoD-only engine (HTTP 422).
	ErrPolicyUnsupported = errors.New("solver: request unsupported by engine")
	// ErrInfeasible: the instance admits no solution under the
	// engine's policy; no solver choice can help (HTTP 422).
	ErrInfeasible = errors.New("solver: instance infeasible")
)

// taggedError attaches a sentinel to an underlying error without
// changing its rendered message: Error() is the legacy text verbatim
// (keeping /v1 response bodies byte-identical), while errors.Is sees
// both the original chain and the sentinel.
type taggedError struct {
	err      error
	sentinel error
}

func (t *taggedError) Error() string   { return t.err.Error() }
func (t *taggedError) Unwrap() []error { return []error{t.err, t.sentinel} }

// tag wraps err with sentinel unless it already carries it.
func tag(err, sentinel error) error {
	if err == nil || errors.Is(err, sentinel) {
		return err
	}
	return &taggedError{err: err, sentinel: sentinel}
}

// MarkInfeasible attaches the ErrInfeasible sentinel to err without
// changing its rendered message. It exists for out-of-package
// cooperators (the delta session layer) that classify their own
// failures but must stay on the solver sentinel taxonomy.
func MarkInfeasible(err error) error { return tag(err, ErrInfeasible) }
