package solver

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
)

// autoInstances is a deterministic mixed bag of NoD and
// distance-constrained instances for the portfolio tests.
func autoInstances(n int) []*core.Instance {
	rng := rand.New(rand.NewSource(77))
	out := make([]*core.Instance, n)
	for i := range out {
		out[i] = gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    2 + rng.Intn(5),
			MaxArity:     2 + rng.Intn(3),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(4),
		}, i%2 == 1)
	}
	return out
}

// TestAutoNeverWorse pins the portfolio's whole point: on every
// instance, auto is at least as good as every individual non-hetero
// engine that succeeds, and its solution verifies under its reported
// policy.
func TestAutoNeverWorse(t *testing.T) {
	ctx := context.Background()
	auto := MustLookup(Auto)
	for ii, in := range autoInstances(10) {
		rep, err := auto.Solve(ctx, Request{Instance: in})
		if err != nil {
			t.Fatalf("instance %d: auto: %v", ii, err)
		}
		if err := core.Verify(in, rep.Policy, rep.Solution); err != nil {
			t.Fatalf("instance %d: auto solution infeasible: %v", ii, err)
		}
		got := rep.Solution.NumReplicas()
		for _, eng := range Engines() {
			c := eng.Capabilities()
			if c.Name == Auto || c.Hetero {
				continue
			}
			r, err := eng.Solve(ctx, Request{Instance: in})
			if err != nil {
				continue
			}
			if got > r.Solution.NumReplicas() {
				t.Errorf("instance %d: auto %d worse than %s %d", ii, got, c.Name, r.Solution.NumReplicas())
			}
		}
		if rep.Engine == Auto || rep.Engine == "" {
			t.Errorf("instance %d: report does not name the winning engine: %q", ii, rep.Engine)
		}
	}
}

// TestAutoProvedOptimal pins that on small instances the exact
// candidates join the portfolio and certify the winner: the report is
// proved and matches exact-multiple.
func TestAutoProvedOptimal(t *testing.T) {
	ctx := context.Background()
	auto := MustLookup(Auto)
	for ii, in := range autoInstances(6) {
		rep, err := auto.Solve(ctx, Request{Instance: in})
		if err != nil {
			t.Fatalf("instance %d: %v", ii, err)
		}
		if !rep.Proved {
			t.Errorf("instance %d: small-instance portfolio not proved", ii)
		}
		opt, err := MustLookup(ExactMultiple).Solve(ctx, Request{Instance: in})
		if err != nil {
			t.Fatalf("instance %d: exact-multiple: %v", ii, err)
		}
		if rep.Solution.NumReplicas() != opt.Solution.NumReplicas() {
			t.Errorf("instance %d: auto %d, optimum %d", ii, rep.Solution.NumReplicas(), opt.Solution.NumReplicas())
		}
	}
}

// TestAutoWantSingle pins the policy constraint: the portfolio
// restricted to Single engines reports a Single-policy solution that
// matches the best Single engine, and never silently relaxes.
func TestAutoWantSingle(t *testing.T) {
	ctx := context.Background()
	auto := MustLookup(Auto)
	for ii, in := range autoInstances(6) {
		rep, err := auto.Solve(ctx, Request{Instance: in, Policy: WantSingle})
		if err != nil {
			t.Fatalf("instance %d: %v", ii, err)
		}
		if rep.Policy != core.Single {
			t.Fatalf("instance %d: WantSingle returned policy %v", ii, rep.Policy)
		}
		if err := core.Verify(in, core.Single, rep.Solution); err != nil {
			t.Errorf("instance %d: solution fails Single verification: %v", ii, err)
		}
		opt, err := MustLookup(ExactSingle).Solve(ctx, Request{Instance: in})
		if err != nil {
			t.Fatalf("instance %d: exact-single: %v", ii, err)
		}
		if rep.Solution.NumReplicas() != opt.Solution.NumReplicas() {
			t.Errorf("instance %d: constrained auto %d, Single optimum %d",
				ii, rep.Solution.NumReplicas(), opt.Solution.NumReplicas())
		}
	}
}

// TestAutoDeterministic pins reproducibility: selection depends on
// capabilities and replica counts only, never on timing, so repeated
// runs return the same winner and the same solution.
func TestAutoDeterministic(t *testing.T) {
	ctx := context.Background()
	auto := MustLookup(Auto)
	for ii, in := range autoInstances(6) {
		first, err := auto.Solve(ctx, Request{Instance: in})
		if err != nil {
			t.Fatalf("instance %d: %v", ii, err)
		}
		for run := 0; run < 3; run++ {
			again, err := auto.Solve(ctx, Request{Instance: in})
			if err != nil {
				t.Fatalf("instance %d run %d: %v", ii, run, err)
			}
			if again.Engine != first.Engine || again.Proved != first.Proved ||
				!reflect.DeepEqual(again.Solution, first.Solution) {
				t.Fatalf("instance %d run %d: nondeterministic portfolio: %q/%d vs %q/%d",
					ii, run, first.Engine, first.Solution.NumReplicas(),
					again.Engine, again.Solution.NumReplicas())
			}
		}
	}
}

// TestAutoExactHints pins the "exact" hint: "skip" removes the
// exponential candidates (no proof possible), "force" admits them
// regardless of instance size.
func TestAutoExactHints(t *testing.T) {
	ctx := context.Background()
	auto := MustLookup(Auto)
	in := autoInstances(1)[0]
	rep, err := auto.Solve(ctx, Request{Instance: in, Hints: map[string]string{"exact": "skip"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Proved {
		t.Error("portfolio without exact candidates claimed a proof")
	}
	if rep.Work != 0 {
		t.Errorf("heuristic-only portfolio reported work %d", rep.Work)
	}
	forced, err := auto.Solve(ctx, Request{Instance: in, Hints: map[string]string{"exact": "force"}})
	if err != nil {
		t.Fatal(err)
	}
	if !forced.Proved {
		t.Error("forced exact candidates still no proof")
	}
}

// TestAutoBudgetPropagates pins that Request.Budget reaches the exact
// candidates: a starvation budget silently drops them (the heuristics
// still answer) instead of failing the portfolio.
func TestAutoBudgetPropagates(t *testing.T) {
	in := autoInstances(1)[0]
	rep, err := MustLookup(Auto).Solve(context.Background(), Request{Instance: in, Budget: 1})
	if err != nil {
		t.Fatalf("starved portfolio failed outright: %v", err)
	}
	if rep.Proved {
		t.Error("budget-starved exact candidates still proved the result")
	}
}
