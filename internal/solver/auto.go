package solver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"replicatree/internal/core"
)

// The auto engine is the capabilities registry made executable: a
// portfolio that, per request, selects every suitable engine by its
// declared capability document, races them over the batch runner and
// returns the best verified answer. Consumers reach it like any other
// engine ("-solver auto", {"solver": "auto"}), so each new registered
// engine automatically improves every consumer.
//
// Selection is deterministic: candidates are filtered on declared
// capabilities plus instance feasibility (never on timing), results
// are collected in registry order, and the winner is the lowest
// replica count with the lexicographically first engine breaking ties.
// Exact engines join only on small instances (or on the "exact":
// "force" hint) and run budget-capped, so auto stays affordable and
// its answer reproducible.

const (
	// autoExactMaxNodes gates exponential candidates: beyond this many
	// tree nodes they are excluded unless the request hints
	// "exact": "force" ("skip" excludes them at any size).
	autoExactMaxNodes = 192
	// autoExactBudget caps each exponential candidate's search steps
	// when the request sets no budget of its own; exhaustion just
	// drops the candidate from the portfolio.
	autoExactBudget = int64(2_000_000)
	// autoDecompMinNodes routes oversized instances to the decomp
	// engine (when linked in) instead of racing the whole-tree
	// portfolio on them. The "decomp" hint mirrors the "exact" hint:
	// "force" routes at any size, "skip" never routes.
	autoDecompMinNodes = 32768
)

type autoEngine struct {
	caps Capabilities
}

func newAutoEngine() Engine {
	return &autoEngine{caps: Capabilities{
		Name:         Auto,
		Policy:       core.Multiple, // winners may be stricter; Multiple always admits them
		Exact:        false,         // Report.Proved says when a run was optimal anyway
		SupportsDMax: true,
		Cost:         CostPolynomial, // exponential candidates are size-gated and budget-capped
		Description:  "portfolio: races every capable registered engine, returns the best solution",
	}}
}

func (a *autoEngine) Name() string               { return a.caps.Name }
func (a *autoEngine) Capabilities() Capabilities { return a.caps }
func (a *autoEngine) String() string             { return a.caps.Name }

func (a *autoEngine) Solve(ctx context.Context, req Request) (Report, error) {
	begin := time.Now()
	rep := Report{Engine: Auto, Policy: core.Multiple}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if req.Instance == nil {
		return rep, fmt.Errorf("solver %s: nil instance", Auto)
	}
	if len(req.Exclude) > 0 {
		// Same gate engineCore applies to non-delta engines: dropping
		// the constraint would place on a failed server.
		return rep, tag(fmt.Errorf("solver %s: cannot honour excluded servers (delta engines only)",
			Auto), ErrPolicyUnsupported)
	}
	in := req.Instance
	budget := req.Budget
	if budget <= 0 {
		budget = BudgetFrom(ctx)
	}

	// Oversized instances route to the subtree decomposition engine
	// when it is linked into the binary: racing whole-tree engines on
	// a million-node tree is exactly the ceiling decomp exists to
	// break. Routing is by name (decomp imports this package, so it
	// cannot be referenced statically); a missing or failing decomp
	// falls through to the regular portfolio.
	if dec := req.Hint("decomp"); dec != "skip" && (dec == "force" || in.Tree.Len() >= autoDecompMinNodes) {
		if eng, err := Lookup(Decomp); err == nil && req.Policy.Allows(core.Multiple) {
			creq := Request{
				Instance: in,
				Budget:   budget,
				Deadline: req.Deadline,
				Hints:    map[string]string{"no-lower-bound": "1"},
			}
			if drep, derr := eng.Solve(ctx, creq); derr == nil && drep.Solution != nil {
				rep.Solution = drep.Solution
				rep.Policy = drep.Policy
				rep.Engine = drep.Engine
				rep.Work = drep.Work
				fillBound(&rep, req)
				rep.Elapsed = time.Since(begin)
				return rep, nil
			}
		}
	}

	// Feasibility depends only on the policy, so compute it at most
	// once per policy instead of per candidate (Feasible walks every
	// client's eligible-server set).
	feasCache := map[core.Policy]bool{}
	feasible := func(p core.Policy) bool {
		v, ok := feasCache[p]
		if !ok {
			v = in.Feasible(p)
			feasCache[p] = v
		}
		return v
	}

	// Capability-driven candidate selection. "capable" counts engines
	// that match the request before the feasibility cut, so an empty
	// portfolio is classified correctly: no matching engine at all is
	// an unsupported request, while matching engines that are all
	// blocked by infeasibility condemn the instance.
	var tasks []Task
	capable := 0
	for _, e := range Engines() {
		c := e.Capabilities()
		if c.Name == Auto || c.Name == Decomp || c.Hetero || c.Delta {
			// No self-recursion; decomp is routed explicitly above, not
			// raced (its piece solves already fan out through Batch);
			// hetero engines duplicate the uniform ones; delta engines
			// optimise churn against a previous placement, not replica
			// count, so they never compete.
			continue
		}
		if !req.Policy.Allows(c.Policy) {
			continue
		}
		if !c.SupportsDMax && !in.NoD() {
			continue
		}
		if c.Cost == CostExponential {
			if req.Hint("exact") == "skip" {
				continue
			}
			// Engines registered through the deprecated v1 shim declare
			// no MaxNodes; exponential ones still get the classic gate.
			limit := c.MaxNodes
			if limit == 0 {
				limit = autoExactMaxNodes
			}
			if req.Hint("exact") != "force" && in.Tree.Len() > limit {
				continue
			}
		} else if c.MaxNodes > 0 && in.Tree.Len() > c.MaxNodes {
			// Polynomial engines with a declared ceiling (lp-round's
			// simplex tableau is quadratic in the tree) drop out of the
			// portfolio above it.
			continue
		}
		capable++
		if !feasible(c.Policy) {
			continue
		}
		// The candidate request deliberately omits req.Scratch: Batch
		// runs candidates concurrently and a Scratch is single-owner,
		// so sharing it would race the session buffers (and alias the
		// candidates' solutions into one arena).
		creq := Request{
			Instance: in,
			Budget:   budget,
			Deadline: req.Deadline,
			// Auto computes the bound once for its own report; the
			// candidates need not repeat it.
			Hints: map[string]string{"no-lower-bound": "1"},
		}
		if c.Cost == CostExponential && creq.Budget <= 0 {
			creq.Budget = autoExactBudget
		}
		tasks = append(tasks, Task{ID: c.Name, Engine: e, Request: creq})
	}
	if len(tasks) == 0 {
		if capable > 0 {
			return rep, tag(fmt.Errorf("solver %s: instance is infeasible for every capable engine (constraint %s)",
				Auto, req.Policy), ErrInfeasible)
		}
		return rep, tag(fmt.Errorf("solver %s: no registered engine satisfies the request (policy constraint %s)",
			Auto, req.Policy), ErrPolicyUnsupported)
	}

	results, _ := Batch(ctx, tasks, Options{})
	best := -1
	for i := range results {
		r := &results[i]
		if r.Err != nil || r.Report.Solution == nil {
			continue
		}
		rep.Work += r.Report.Work
		if best < 0 || r.Report.Solution.NumReplicas() < results[best].Report.Solution.NumReplicas() {
			best = i
		}
	}
	if best < 0 {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		errs := make([]error, 0, len(results))
		for i := range results {
			if results[i].Err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", results[i].Task.ID, results[i].Err))
			}
		}
		err := fmt.Errorf("solver %s: every candidate failed: %w", Auto, errors.Join(errs...))
		if !feasible(core.Multiple) {
			err = tag(err, ErrInfeasible)
		}
		return rep, err
	}

	win := results[best].Report
	rep.Solution = win.Solution
	rep.Policy = win.Policy
	rep.Engine = win.Engine
	rep.Proved = win.Proved || provedByPeer(results, win)
	fillBound(&rep, req)
	rep.Elapsed = time.Since(begin)
	return rep, nil
}

// provedByPeer reports whether some exact candidate proves the
// winner's count optimal for the winner's policy: a proved Multiple
// optimum at the same count bounds every policy from below, and a
// proved Single optimum covers a Single-policy winner.
func provedByPeer(results []Result, win Report) bool {
	n := win.Solution.NumReplicas()
	for i := range results {
		r := &results[i]
		if r.Err != nil || r.Report.Solution == nil || !r.Report.Proved {
			continue
		}
		if r.Report.Solution.NumReplicas() != n {
			continue
		}
		if r.Report.Policy == core.Multiple || win.Policy == core.Single {
			return true
		}
	}
	return false
}
