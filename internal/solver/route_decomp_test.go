package solver_test

// Routing pins for the auto → decomp handoff. These live in an
// external test package because decomp imports solver: the engine can
// only reach the registry through this package's import graph, exactly
// as it does in the shipped binaries.

import (
	"context"
	"math/rand"
	"testing"

	"replicatree/internal/core"
	_ "replicatree/internal/decomp" // registers the decomp engine
	"replicatree/internal/gen"
	"replicatree/internal/solver"
)

func smallInstance(t *testing.T) *core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(13))
	return gen.RandomInstance(rng, gen.TreeConfig{Internals: 30, MaxArity: 3, ExtraClients: 20}, false)
}

// hugeInstance materialises a generated flat instance above the
// routing threshold.
func hugeInstance(t *testing.T) *core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	fi, err := gen.RandomFlatInstance(rng, 40000, gen.TreeConfig{}, false)
	if err != nil {
		t.Fatal(err)
	}
	in, err := fi.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if in.Tree.Len() < 32768 {
		t.Fatalf("fixture too small for the routing threshold: %d nodes", in.Tree.Len())
	}
	return in
}

func TestAutoRoutesSmallAwayFromDecomp(t *testing.T) {
	auto := solver.MustLookup(solver.Auto)
	rep, err := auto.Solve(context.Background(), solver.Request{Instance: smallInstance(t)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine == solver.Decomp {
		t.Fatal("small instance routed to decomp by default")
	}
}

func TestAutoDecompForceHint(t *testing.T) {
	in := smallInstance(t)
	auto := solver.MustLookup(solver.Auto)
	rep, err := auto.Solve(context.Background(), solver.Request{
		Instance: in,
		Hints:    map[string]string{"decomp": "force"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != solver.Decomp {
		t.Fatalf("decomp=force routed to %q", rep.Engine)
	}
	if err := core.Verify(in, rep.Policy, rep.Solution); err != nil {
		t.Fatalf("forced decomp solution failed verification: %v", err)
	}
	if rep.LowerBound != core.LowerBound(in) {
		t.Fatalf("forced decomp report bound %d, want %d", rep.LowerBound, core.LowerBound(in))
	}
}

func TestAutoRoutesHugeToDecomp(t *testing.T) {
	in := hugeInstance(t)
	auto := solver.MustLookup(solver.Auto)
	rep, err := auto.Solve(context.Background(), solver.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != solver.Decomp {
		t.Fatalf("oversized instance routed to %q, want %q", rep.Engine, solver.Decomp)
	}
	if err := core.Verify(in, rep.Policy, rep.Solution); err != nil {
		t.Fatalf("routed solution failed verification: %v", err)
	}
}

func TestAutoDecompSkipHint(t *testing.T) {
	in := hugeInstance(t)
	auto := solver.MustLookup(solver.Auto)
	rep, err := auto.Solve(context.Background(), solver.Request{
		Instance: in,
		Hints:    map[string]string{"decomp": "skip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine == solver.Decomp {
		t.Fatal("decomp=skip still routed to decomp")
	}
	if err := core.Verify(in, rep.Policy, rep.Solution); err != nil {
		t.Fatalf("portfolio solution failed verification: %v", err)
	}
}

// TestAutoWantSingleSkipsDecompRouting: decomp only produces Multiple
// placements, so an oversized WantSingle request must bypass the
// routing block instead of failing inside it.
func TestAutoWantSingleSkipsDecompRouting(t *testing.T) {
	in := hugeInstance(t)
	auto := solver.MustLookup(solver.Auto)
	rep, err := auto.Solve(context.Background(), solver.Request{Instance: in, Policy: solver.WantSingle})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine == solver.Decomp {
		t.Fatal("WantSingle routed to decomp")
	}
	if rep.Policy != core.Single {
		t.Fatalf("WantSingle returned policy %v", rep.Policy)
	}
}

// TestMaxNodesGate pins the sized registrations: whole-tree engines
// now carry explicit node ceilings so the portfolio never races them
// on oversized instances.
func TestMaxNodesGate(t *testing.T) {
	for name, want := range map[string]int{
		solver.ExactSingle:   192,
		solver.ExactMultiple: 192,
		solver.LPRound:       4096,
		solver.Decomp:        0,
	} {
		caps := solver.MustLookup(name).Capabilities()
		if caps.MaxNodes != want {
			t.Errorf("%s: MaxNodes %d, want %d", name, caps.MaxNodes, want)
		}
	}
}
