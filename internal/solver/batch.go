package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/stats"
)

// Task is one (engine, request) pair of a batch. Set Engine plus
// Request (v2); the deprecated Solver/Instance pair keeps working and
// is adapted on dispatch.
type Task struct {
	// ID is an optional caller label carried into the Result.
	ID string
	// Engine and Request are the v2 task form; Request.Instance may be
	// left nil when the legacy Instance field is set.
	Engine  Engine
	Request Request
	// Solver is the deprecated task form, adapted via AsEngine.
	//
	// Deprecated: set Engine instead.
	Solver Solver
	// Instance is the deprecated companion of Solver.
	//
	// Deprecated: set Request.Instance instead.
	Instance *core.Instance
}

// normalize resolves the two task forms into the engine dispatch pair.
func (t Task) normalize() (Engine, Request, error) {
	eng := t.Engine
	if eng == nil {
		if t.Solver == nil {
			return nil, Request{}, errors.New("solver: batch task has nil solver")
		}
		eng = AsEngine(t.Solver)
	}
	req := t.Request
	if req.Instance == nil {
		req.Instance = t.Instance
	}
	if req.Instance == nil {
		return nil, Request{}, fmt.Errorf("solver: batch task for %s has nil instance", eng.Name())
	}
	return eng, req, nil
}

// Result is the outcome of one Task.
type Result struct {
	Task Task
	// Report is the engine's full v2 outcome (bound, gap, work, proof).
	Report Report
	// Solution mirrors Report.Solution for v1 consumers.
	Solution *core.Solution
	Err      error
	Elapsed  time.Duration
	// Skipped marks tasks never started because the batch context was
	// cancelled first; their Err is the context error.
	Skipped bool
}

// Options tunes a Batch run.
type Options struct {
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each task; 0 disables per-task timeouts. A task
	// that times out reports context.DeadlineExceeded (the underlying
	// solve goroutine is abandoned, which is safe for this
	// repository's budgeted, side-effect-free solvers).
	Timeout time.Duration
	// WarmScratch lends each task a pooled Scratch, so warm-capable
	// engines solve on reusable session buffers instead of allocating
	// per task — the fan-out path of the decomp engine's piece solves.
	// Scratch-owned solutions are cloned into the Result before the
	// scratch is pooled again, so results stay valid indefinitely.
	// Tasks whose Request already carries a Scratch keep their own
	// (and their results then follow the usual session-buffer rules).
	WarmScratch bool
}

// Stats aggregates a finished batch.
type Stats struct {
	Tasks, Solved, Failed, Skipped int
	// Replicas is the summed objective over solved tasks.
	Replicas int
	// Elapsed is the wall-clock time of the whole batch; Work is the
	// summed per-task solve time. Work/Elapsed is the parallel
	// speedup actually realised.
	Elapsed, Work time.Duration
}

// String renders a one-line summary.
func (s Stats) String() string {
	speedup := 1.0
	if s.Elapsed > 0 {
		speedup = float64(s.Work) / float64(s.Elapsed)
	}
	return fmt.Sprintf("batch: %d tasks (%d solved, %d failed, %d skipped) %d replicas wall=%v work=%v speedup=%.1fx",
		s.Tasks, s.Solved, s.Failed, s.Skipped, s.Replicas, s.Elapsed.Round(time.Microsecond), s.Work.Round(time.Microsecond), speedup)
}

// Table renders the aggregate as a stats.Table, the repository's
// experiment-output currency.
func (s Stats) Table() *stats.Table {
	t := stats.NewTable("solver batch", "tasks", "solved", "failed", "skipped", "replicas", "wall", "work")
	t.AddRow(s.Tasks, s.Solved, s.Failed, s.Skipped, s.Replicas, s.Elapsed.String(), s.Work.String())
	return t
}

// Batch solves every task over a bounded worker pool and returns the
// results in task order plus aggregate statistics. Per-task errors are
// reported in the Result, never by panicking the batch; cancelling ctx
// stops dispatch, marks undispatched tasks Skipped with the context
// error, and returns after in-flight tasks settle. Solvers are
// dispatched deterministically (task order), so any aggregation that
// consumes results in input order is independent of Workers.
func Batch(ctx context.Context, tasks []Task, opt Options) ([]Result, Stats) {
	start := time.Now()
	results := make([]Result, len(tasks))
	for i := range tasks {
		results[i] = Result{Task: tasks[i], Skipped: true}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range tasks {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runTask(ctx, tasks[i], opt)
			}
		}()
	}
	wg.Wait()

	st := Stats{Tasks: len(tasks), Elapsed: time.Since(start)}
	for i := range results {
		r := &results[i]
		if r.Skipped {
			r.Err = context.Cause(ctx)
			if r.Err == nil {
				r.Err = context.Canceled // unreachable: skips imply cancellation
			}
			st.Skipped++
			continue
		}
		st.Work += r.Elapsed
		if r.Err != nil {
			st.Failed++
			continue
		}
		st.Solved++
		if r.Solution != nil {
			st.Replicas += r.Solution.NumReplicas()
		}
	}
	return results, st
}

// runTask solves one task, enforcing the per-task timeout by racing
// the solve goroutine against the task context.
func runTask(ctx context.Context, t Task, opt Options) Result {
	res := Result{Task: t}
	eng, req, err := t.normalize()
	if err != nil {
		res.Err = err
		return res
	}
	var sc *Scratch
	if opt.WarmScratch && req.Scratch == nil {
		sc = GetScratch()
		req.Scratch = sc
	}
	// settle reclaims the lent scratch after a real outcome: the
	// scratch-owned solution is cloned first so the Result survives
	// the scratch's next session.
	settle := func(rep *Report) {
		if sc == nil {
			return
		}
		if rep.Solution != nil {
			rep.Solution = rep.Solution.Clone()
		}
		PutScratch(sc)
	}
	tctx := ctx
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	type outcome struct {
		rep Report
		err error
	}
	ch := make(chan outcome, 1)
	begin := time.Now()
	go func() {
		// Profile samples of the fan-out attribute to the engine and
		// task (go tool pprof -tags): with decomp's piece solves and
		// auto's candidate races both funnelling through Batch, the
		// labels are what keeps per-piece/per-engine time apart.
		pprof.Do(tctx, pprof.Labels("batch_engine", eng.Name(), "batch_task", t.ID), func(c context.Context) {
			rep, err := eng.Solve(c, req)
			ch <- outcome{rep, err}
		})
	}()
	select {
	case o := <-ch:
		res.Report, res.Err = o.rep, o.err
		settle(&res.Report)
	case <-tctx.Done():
		// The solve may have finished in the same instant the deadline
		// fired; both select cases ready means a random pick, so drain
		// the channel and prefer the real outcome for determinism.
		select {
		case o := <-ch:
			res.Report, res.Err = o.rep, o.err
			settle(&res.Report)
		default:
			res.Err = tctx.Err()
			// The abandoned solve goroutine still owns the lent scratch;
			// it is simply never pooled again — losing one scratch is
			// cheaper than racing its buffers.
		}
	}
	res.Solution = res.Report.Solution
	res.Elapsed = time.Since(begin)
	return res
}
