package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/stats"
)

// Task is one (instance, solver) pair of a batch.
type Task struct {
	// ID is an optional caller label carried into the Result.
	ID       string
	Solver   Solver
	Instance *core.Instance
}

// Result is the outcome of one Task.
type Result struct {
	Task     Task
	Solution *core.Solution
	Err      error
	Elapsed  time.Duration
	// Skipped marks tasks never started because the batch context was
	// cancelled first; their Err is the context error.
	Skipped bool
}

// Options tunes a Batch run.
type Options struct {
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each task; 0 disables per-task timeouts. A task
	// that times out reports context.DeadlineExceeded (the underlying
	// solve goroutine is abandoned, which is safe for this
	// repository's budgeted, side-effect-free solvers).
	Timeout time.Duration
}

// Stats aggregates a finished batch.
type Stats struct {
	Tasks, Solved, Failed, Skipped int
	// Replicas is the summed objective over solved tasks.
	Replicas int
	// Elapsed is the wall-clock time of the whole batch; Work is the
	// summed per-task solve time. Work/Elapsed is the parallel
	// speedup actually realised.
	Elapsed, Work time.Duration
}

// String renders a one-line summary.
func (s Stats) String() string {
	speedup := 1.0
	if s.Elapsed > 0 {
		speedup = float64(s.Work) / float64(s.Elapsed)
	}
	return fmt.Sprintf("batch: %d tasks (%d solved, %d failed, %d skipped) %d replicas wall=%v work=%v speedup=%.1fx",
		s.Tasks, s.Solved, s.Failed, s.Skipped, s.Replicas, s.Elapsed.Round(time.Microsecond), s.Work.Round(time.Microsecond), speedup)
}

// Table renders the aggregate as a stats.Table, the repository's
// experiment-output currency.
func (s Stats) Table() *stats.Table {
	t := stats.NewTable("solver batch", "tasks", "solved", "failed", "skipped", "replicas", "wall", "work")
	t.AddRow(s.Tasks, s.Solved, s.Failed, s.Skipped, s.Replicas, s.Elapsed.String(), s.Work.String())
	return t
}

// Batch solves every task over a bounded worker pool and returns the
// results in task order plus aggregate statistics. Per-task errors are
// reported in the Result, never by panicking the batch; cancelling ctx
// stops dispatch, marks undispatched tasks Skipped with the context
// error, and returns after in-flight tasks settle. Solvers are
// dispatched deterministically (task order), so any aggregation that
// consumes results in input order is independent of Workers.
func Batch(ctx context.Context, tasks []Task, opt Options) ([]Result, Stats) {
	start := time.Now()
	results := make([]Result, len(tasks))
	for i := range tasks {
		results[i] = Result{Task: tasks[i], Skipped: true}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range tasks {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runTask(ctx, tasks[i], opt.Timeout)
			}
		}()
	}
	wg.Wait()

	st := Stats{Tasks: len(tasks), Elapsed: time.Since(start)}
	for i := range results {
		r := &results[i]
		if r.Skipped {
			r.Err = context.Cause(ctx)
			if r.Err == nil {
				r.Err = context.Canceled // unreachable: skips imply cancellation
			}
			st.Skipped++
			continue
		}
		st.Work += r.Elapsed
		if r.Err != nil {
			st.Failed++
			continue
		}
		st.Solved++
		if r.Solution != nil {
			st.Replicas += r.Solution.NumReplicas()
		}
	}
	return results, st
}

// runTask solves one task, enforcing the per-task timeout by racing
// the solve goroutine against the task context.
func runTask(ctx context.Context, t Task, timeout time.Duration) Result {
	res := Result{Task: t}
	if t.Solver == nil {
		res.Err = errors.New("solver: batch task has nil solver")
		return res
	}
	if t.Instance == nil {
		res.Err = fmt.Errorf("solver: batch task for %s has nil instance", t.Solver.Name())
		return res
	}
	tctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type outcome struct {
		sol *core.Solution
		err error
	}
	ch := make(chan outcome, 1)
	begin := time.Now()
	go func() {
		sol, err := t.Solver.Solve(tctx, t.Instance)
		ch <- outcome{sol, err}
	}()
	select {
	case o := <-ch:
		res.Solution, res.Err = o.sol, o.err
	case <-tctx.Done():
		// The solve may have finished in the same instant the deadline
		// fired; both select cases ready means a random pick, so drain
		// the channel and prefer the real outcome for determinism.
		select {
		case o := <-ch:
			res.Solution, res.Err = o.sol, o.err
		default:
			res.Err = tctx.Err()
		}
	}
	res.Elapsed = time.Since(begin)
	return res
}
