package solver

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
)

// TestEverySolverVerifies is the cross-solver metamorphic check: on a
// shared instance set, every registered solver either returns an error
// or a solution that passes the core feasibility verifier under the
// solver's declared policy. It also pins the partial order the
// registry promises: no Multiple-policy solver beats exact-multiple,
// no Single-policy solver beats exact-single, and the Multiple optimum
// never exceeds the Single optimum.
func TestEverySolverVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var instances []*core.Instance
	for i := 0; i < 8; i++ {
		instances = append(instances, gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2 + rng.Intn(2),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, i%2 == 1))
	}
	ctx := context.Background()
	for ii, in := range instances {
		optimum := map[core.Policy]int{}
		for _, name := range []string{ExactSingle, ExactMultiple} {
			s := MustGet(name)
			sol, err := s.Solve(ctx, in)
			if err != nil {
				t.Fatalf("instance %d: %s: %v", ii, name, err)
			}
			optimum[PolicyOf(s)] = sol.NumReplicas()
		}
		if optimum[core.Multiple] > optimum[core.Single] {
			t.Errorf("instance %d: Multiple optimum %d above Single optimum %d",
				ii, optimum[core.Multiple], optimum[core.Single])
		}
		for _, s := range Solvers() {
			sol, err := s.Solve(ctx, in)
			if err != nil {
				// Declining an instance (NoD-gated solvers on finite
				// dmax, budget exhaustion) is legitimate; returning an
				// infeasible solution is not.
				continue
			}
			pol := PolicyOf(s)
			if verr := core.Verify(in, pol, sol); verr != nil {
				t.Errorf("instance %d: %s: infeasible solution: %v", ii, s.Name(), verr)
			}
			if sol.NumReplicas() < optimum[pol] {
				t.Errorf("instance %d: %s returned %d replicas, below the %s optimum %d",
					ii, s.Name(), sol.NumReplicas(), pol, optimum[pol])
			}
			if IsExact(s) && sol.NumReplicas() != optimum[pol] {
				t.Errorf("instance %d: exact solver %s returned %d, optimum is %d",
					ii, s.Name(), sol.NumReplicas(), optimum[pol])
			}
		}
	}
}

// TestExactBudgetSurfacesAsError pins that budget exhaustion inside a
// Batch comes back as a per-task error, not a bogus solution.
func TestExactBudgetSurfacesAsError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 6, MaxArity: 3, MaxDist: 3, MaxReq: 9, ExtraClients: 4}, false)
	ctx := WithBudget(context.Background(), 2)
	results, st := Batch(ctx, []Task{{Solver: MustGet(ExactSingle), Instance: in}}, Options{})
	if st.Failed != 1 {
		t.Fatalf("expected budget failure, got %+v", st)
	}
	if !errors.Is(results[0].Err, exact.ErrBudget) {
		t.Fatalf("err = %v, want exact.ErrBudget", results[0].Err)
	}
}
