// Package solver unifies every replica placement algorithm in the
// repository — the Single/Multiple heuristics, the exact
// branch-and-bound baselines, the LP-rounding heuristic and the
// heterogeneous solvers — behind one contract, one registry and one
// parallel batch runner.
//
// The contract is deliberately minimal: a Solver has a name and turns
// a core.Instance into a core.Solution. Everything a consumer needs
// beyond that (which access policy the solution obeys, whether the
// solver is exact) is exposed as registry metadata, so CLI tools,
// experiment sweeps, golden tests and benchmarks can all dispatch by
// name instead of hard-coding call signatures.
package solver

import (
	"context"
	"fmt"

	"replicatree/internal/core"
)

// Solver is the common contract every algorithm adapter implements.
type Solver interface {
	Name() string
	Solve(ctx context.Context, in *core.Instance) (*core.Solution, error)
}

// PolicyProvider is implemented by solvers that know which access
// policy their solutions obey. All built-in solvers implement it;
// consumers should use PolicyOf rather than type-asserting directly.
type PolicyProvider interface {
	Policy() core.Policy
}

// ExactProvider is implemented by solvers that return a provably
// optimal solution (possibly within a work budget).
type ExactProvider interface {
	Exact() bool
}

// PolicyOf returns the access policy of s, defaulting to Single for
// solvers that do not declare one (Single solutions are the
// conservative choice: they verify under both policies' feasibility
// rules only when unsplit, so a solver without metadata should be
// treated as the stricter policy it claims nothing about).
func PolicyOf(s Solver) core.Policy {
	if p, ok := s.(PolicyProvider); ok {
		return p.Policy()
	}
	return core.Single
}

// IsExact reports whether s declares itself an exact solver.
func IsExact(s Solver) bool {
	if e, ok := s.(ExactProvider); ok {
		return e.Exact()
	}
	return false
}

// funcSolver adapts a plain function to the Solver contract.
type funcSolver struct {
	name  string
	pol   core.Policy
	exact bool
	fn    func(context.Context, *core.Instance) (*core.Solution, error)
}

func (s *funcSolver) Name() string        { return s.name }
func (s *funcSolver) Policy() core.Policy { return s.pol }
func (s *funcSolver) Exact() bool         { return s.exact }

func (s *funcSolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if in == nil {
		return nil, fmt.Errorf("solver %s: nil instance", s.name)
	}
	return s.fn(ctx, in)
}

func (s *funcSolver) String() string { return s.name }

// New wraps a context-aware solve function as a Solver.
func New(name string, pol core.Policy, fn func(context.Context, *core.Instance) (*core.Solution, error)) Solver {
	return &funcSolver{name: name, pol: pol, fn: fn}
}

// Wrap adapts the repository's prevailing context-less algorithm
// signature. The context is still honoured between Batch tasks and on
// entry; the wrapped function itself runs to completion.
func Wrap(name string, pol core.Policy, fn func(*core.Instance) (*core.Solution, error)) Solver {
	return &funcSolver{name: name, pol: pol, fn: func(_ context.Context, in *core.Instance) (*core.Solution, error) {
		return fn(in)
	}}
}

// budgetKey carries the work budget for exact solvers through the
// context, so budgeted and unbudgeted callers share one dispatch path.
type budgetKey struct{}

// WithBudget returns a context that instructs exact solvers to cap
// their search at the given work budget (0 keeps their default).
func WithBudget(ctx context.Context, budget int64) context.Context {
	if budget <= 0 {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, budget)
}

// BudgetFrom extracts the work budget from ctx, or 0 if unset.
func BudgetFrom(ctx context.Context) int64 {
	if b, ok := ctx.Value(budgetKey{}).(int64); ok {
		return b
	}
	return 0
}
