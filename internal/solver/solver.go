// Package solver unifies every replica placement algorithm in the
// repository — the Single/Multiple heuristics, the exact
// branch-and-bound baselines, the LP-rounding heuristic and the
// heterogeneous solvers — behind one contract, one registry and one
// parallel batch runner.
//
// The contract (v2) is a typed request/response pair: an Engine turns
// a Request (instance + policy constraint + budget + deadline + hints)
// into a Report (solution + lower bound + gap + work + optimality
// proof), and publishes a Capabilities document through the registry
// so consumers select engines by declared properties instead of
// type-asserting optional interfaces. The "auto" engine is a
// capability-driven portfolio over the whole registry.
//
// The original minimal contract — Solver, PolicyOf/IsExact and the
// WithBudget context idiom — survives in this file as a deprecated
// shim layer over the engines; see DESIGN.md for the migration table.
package solver

import (
	"context"
	"fmt"

	"replicatree/internal/core"
)

// Solver is the deprecated v1 contract: a name and a bare solve.
//
// Deprecated: implement or consume Engine instead; Request/Report
// carry everything this interface and its optional companions spread
// over type assertions and context values.
type Solver interface {
	Name() string
	Solve(ctx context.Context, in *core.Instance) (*core.Solution, error)
}

// PolicyProvider is implemented by v1 solvers that know which access
// policy their solutions obey.
//
// Deprecated: read Capabilities.Policy from the engine instead.
type PolicyProvider interface {
	Policy() core.Policy
}

// ExactProvider is implemented by v1 solvers that return a provably
// optimal solution (possibly within a work budget).
//
// Deprecated: read Capabilities.Exact from the engine instead.
type ExactProvider interface {
	Exact() bool
}

// PolicyOf returns the access policy of s, defaulting to Single for
// solvers that do not declare one. The default is silent — the exact
// trap Capabilities removes: an engine's Capabilities.Policy is always
// an explicit declaration, never a fallback.
//
// Deprecated: use Engine.Capabilities().Policy.
func PolicyOf(s Solver) core.Policy {
	if p, ok := s.(PolicyProvider); ok {
		return p.Policy()
	}
	return core.Single
}

// IsExact reports whether s declares itself an exact solver.
//
// Deprecated: use Engine.Capabilities().Exact.
func IsExact(s Solver) bool {
	if e, ok := s.(ExactProvider); ok {
		return e.Exact()
	}
	return false
}

// funcSolver adapts a plain function to the deprecated Solver
// contract, carrying the metadata the old optional interfaces expose.
type funcSolver struct {
	name  string
	pol   core.Policy
	exact bool
	fn    func(context.Context, *core.Instance) (*core.Solution, error)
}

func (s *funcSolver) Name() string        { return s.name }
func (s *funcSolver) Policy() core.Policy { return s.pol }
func (s *funcSolver) Exact() bool         { return s.exact }

func (s *funcSolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if in == nil {
		return nil, fmt.Errorf("solver %s: nil instance", s.name)
	}
	return s.fn(ctx, in)
}

func (s *funcSolver) String() string { return s.name }

// New wraps a context-aware solve function as a v1 Solver.
//
// Deprecated: use NewEngine with an explicit Capabilities document.
func New(name string, pol core.Policy, fn func(context.Context, *core.Instance) (*core.Solution, error)) Solver {
	return &funcSolver{name: name, pol: pol, fn: fn}
}

// Wrap adapts the repository's prevailing context-less algorithm
// signature to the v1 Solver contract.
//
// Deprecated: use NewEngine with an explicit Capabilities document.
func Wrap(name string, pol core.Policy, fn func(*core.Instance) (*core.Solution, error)) Solver {
	return &funcSolver{name: name, pol: pol, fn: func(_ context.Context, in *core.Instance) (*core.Solution, error) {
		return fn(in)
	}}
}

// budgetKey carries the work budget for exact solvers through the
// context — the v1 smuggling idiom Request.Budget replaces.
type budgetKey struct{}

// WithBudget returns a context that instructs exact solvers to cap
// their search at the given work budget (0 keeps their default).
//
// Deprecated: set Request.Budget instead. Engines keep honouring the
// context value as a fallback so v1 callers behave unchanged.
func WithBudget(ctx context.Context, budget int64) context.Context {
	if budget <= 0 {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, budget)
}

// BudgetFrom extracts the work budget from ctx, or 0 if unset.
//
// Deprecated: read Request.Budget; engines resolve the context
// fallback themselves.
func BudgetFrom(ctx context.Context) int64 {
	if b, ok := ctx.Value(budgetKey{}).(int64); ok {
		return b
	}
	return 0
}
