package cert_test

import (
	"errors"
	"strings"
	"testing"

	"replicatree/internal/cert"
	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// The tampering matrix: every way an attacker (or a buggy worker) can
// doctor a certificate must be caught by offline verification, with
// the precise sentinel the mutation deserves. Each case starts from a
// freshly issued, genuinely valid certificate.
func TestTamperingMatrix(t *testing.T) {
	in := goldenInstance(t, "binary_dist_1.json")

	cases := []struct {
		name   string
		mutate func(c *cert.Certificate)
		want   error
	}{
		{
			// Claiming a better objective than the witness provides.
			name:   "inflated-replica-count",
			mutate: func(c *cert.Certificate) { c.Replicas-- },
			want:   cert.ErrMalformed,
		},
		{
			// Deleting a replica while keeping the claim consistent:
			// clients the replica served become uncovered.
			name: "dropped-replica",
			mutate: func(c *cert.Certificate) {
				victim := c.Witness.Replicas[0]
				c.Witness.Replicas = c.Witness.Replicas[1:]
				kept := c.Witness.Assignments[:0]
				for _, a := range c.Witness.Assignments {
					if a.Server != victim {
						kept = append(kept, a)
					}
				}
				c.Witness.Assignments = kept
				c.Replicas = len(c.Witness.Replicas)
				c.Gap = recomputeGap(c.Replicas, c.Bound.Value)
			},
			want: cert.ErrWitness,
		},
		{
			// Routing requests to a node that holds no replica.
			name: "phantom-server",
			mutate: func(c *cert.Certificate) {
				held := c.Witness.ReplicaSet()
				var phantom tree.NodeID = -1
				for id := tree.NodeID(0); int(id) < in.Tree.Len(); id++ {
					if !held[id] {
						phantom = id
						break
					}
				}
				if phantom == -1 {
					t.Skip("every node is a replica; no phantom available")
				}
				c.Witness.Assignments[0].Server = phantom
			},
			want: cert.ErrWitness,
		},
		{
			// Shaving load off an assignment leaves its client
			// under-served.
			name: "under-served-client",
			mutate: func(c *cert.Certificate) {
				c.Witness.Assignments[0].Amount--
			},
			want: cert.ErrWitness,
		},
		{
			// Overloading: duplicate the largest assignment so its
			// server exceeds W (and its client is over-served).
			name: "duplicated-assignment",
			mutate: func(c *cert.Certificate) {
				c.Witness.Assignments = append(c.Witness.Assignments, c.Witness.Assignments[0])
			},
			want: cert.ErrWitness,
		},
		{
			// Understating the lower bound (with the gap doctored to
			// match) — caught only by recomputing the bound.
			name: "deflated-bound",
			mutate: func(c *cert.Certificate) {
				c.Bound.Value--
				c.Gap = recomputeGap(c.Replicas, c.Bound.Value)
			},
			want: cert.ErrBound,
		},
		{
			// Overstating the bound to fake a tighter (or proved)
			// solve.
			name: "inflated-bound",
			mutate: func(c *cert.Certificate) {
				c.Bound.Value++
				c.Gap = recomputeGap(c.Replicas, c.Bound.Value)
			},
			want: cert.ErrBound,
		},
		{
			// Doctoring only the gap, leaving the bound intact.
			name:   "doctored-gap",
			mutate: func(c *cert.Certificate) { c.Gap /= 2; c.Gap += 0.25 },
			want:   cert.ErrGap,
		},
		{
			// Re-pointing the certificate at a different instance.
			name: "swapped-instance-hash",
			mutate: func(c *cert.Certificate) {
				c.InstanceHash = strings.Repeat("ef", 32)
			},
			want: cert.ErrInstanceHash,
		},
		{
			name:   "garbage-instance-hash",
			mutate: func(c *cert.Certificate) { c.InstanceHash = "short" },
			want:   cert.ErrMalformed,
		},
		{
			name:   "unknown-policy",
			mutate: func(c *cert.Certificate) { c.Policy = "Quorum" },
			want:   cert.ErrMalformed,
		},
		{
			name:   "unknown-bound-kind",
			mutate: func(c *cert.Certificate) { c.Bound.Kind = "oracle" },
			want:   cert.ErrMalformed,
		},
		{
			name:   "future-version",
			mutate: func(c *cert.Certificate) { c.Version = cert.Version + 1 },
			want:   cert.ErrMalformed,
		},
		{
			name:   "stripped-witness",
			mutate: func(c *cert.Certificate) { c.Witness = nil },
			want:   cert.ErrMalformed,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := solvedCert(t, in, solver.ExactMultiple)
			if err := c.VerifyAgainst(in); err != nil {
				t.Fatalf("pre-mutation certificate invalid: %v", err)
			}
			tc.mutate(c)
			err := c.VerifyAgainst(in)
			if err == nil {
				t.Fatal("tampered certificate verified cleanly")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}
}

// TestTamperPolicyDowngrade: relabeling a Multiple-policy certificate
// as Single must fail when the witness actually splits a client.
func TestTamperPolicyDowngrade(t *testing.T) {
	// wide_nod forces splits: many heavy clients under one root.
	in := goldenInstance(t, "wide_nod.json")
	c := solvedCert(t, in, solver.ExactMultiple)
	split := false
	perClient := map[tree.NodeID]int{}
	for _, a := range c.Witness.Assignments {
		perClient[a.Client]++
		if perClient[a.Client] > 1 {
			split = true
		}
	}
	if !split {
		t.Skip("solution happens not to split any client; downgrade undetectable and harmless")
	}
	c.Policy = core.Single.String()
	if err := c.VerifyAgainst(in); !errors.Is(err, cert.ErrWitness) {
		t.Fatalf("policy downgrade: want ErrWitness, got %v", err)
	}
}

// TestVerifyAgainstWrongInstance: an honest certificate presented with
// the wrong instance is rejected on the hash commitment, before any
// replay work.
func TestVerifyAgainstWrongInstance(t *testing.T) {
	a := goldenInstance(t, "binary_nod_1.json")
	b := goldenInstance(t, "binary_nod_2.json")
	c := solvedCert(t, a, solver.Auto)
	if err := c.VerifyAgainst(b); !errors.Is(err, cert.ErrInstanceHash) {
		t.Fatalf("want ErrInstanceHash, got %v", err)
	}
}

func recomputeGap(replicas, bound int) float64 {
	if bound <= 0 {
		return 0
	}
	return float64(replicas-bound) / float64(bound)
}
