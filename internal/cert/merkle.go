package cert

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/bits"
)

// Merkle batching: a job's task certificates become the leaves of a
// binary Merkle tree, the job commits to the single root, and any one
// result carries an O(log n) inclusion proof. The leaf count is
// padded to the next power of two with a fixed padding hash, so every
// proof of an n-leaf tree is exactly ⌈log₂ n⌉ sibling hashes — the
// property the proof-size test pins for n = 1…512.
//
// Domain separation (cf. RFC 6962 and the CTngV3/indexed-Merkle-tree
// exemplars): leaf hashes are SHA-256(0x00 ‖ encoding), interior
// nodes SHA-256(0x01 ‖ left ‖ right), and the padding leaf is the
// constant SHA-256(0x02 ‖ "replicatree-cert:pad") — three disjoint
// preimage spaces, so no second-preimage tricks can move a value
// between tree levels or into the padding.

// padLeaf is the padding leaf hash (see package comment above).
var padLeaf = func() [32]byte {
	h := sha256.New()
	h.Write([]byte{0x02})
	h.Write([]byte("replicatree-cert:pad"))
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}()

// nodeHash combines two children into their parent.
func nodeHash(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

// Tree is a built Merkle tree over certificate leaf hashes. Build one
// with NewTree; it is immutable afterwards and safe for concurrent
// reads.
type Tree struct {
	n      int          // real (unpadded) leaf count
	levels [][][32]byte // levels[0] = padded leaves … levels[depth] = {root}
}

// NewTree builds the tree over the given leaf hashes (in leaf-index
// order). It errors on an empty batch — an empty job commits to
// nothing.
func NewTree(leaves [][32]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("%w: cannot build a Merkle tree over zero leaves", ErrMalformed)
	}
	padded := 1 << ceilLog2(len(leaves))
	level := make([][32]byte, padded)
	copy(level, leaves)
	for i := len(leaves); i < padded; i++ {
		level[i] = padLeaf
	}
	t := &Tree{n: len(leaves), levels: [][][32]byte{level}}
	for len(level) > 1 {
		next := make([][32]byte, len(level)/2)
		for i := range next {
			next[i] = nodeHash(level[2*i], level[2*i+1])
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Len returns the real (unpadded) leaf count.
func (t *Tree) Len() int { return t.n }

// Depth returns the proof length in hashes: ⌈log₂ Len⌉.
func (t *Tree) Depth() int { return len(t.levels) - 1 }

// Root returns the Merkle root.
func (t *Tree) Root() [32]byte { return t.levels[len(t.levels)-1][0] }

// RootHex returns the root as lowercase hex — the form jobs commit to
// on the wire.
func (t *Tree) RootHex() string {
	r := t.Root()
	return hex.EncodeToString(r[:])
}

// Proof is an inclusion proof: the sibling hashes from a leaf up to
// (but excluding) the root, leaf level first.
type Proof struct {
	// LeafIndex is the leaf's position in the batch.
	LeafIndex int `json:"leaf_index"`
	// Leaves is the batch's real leaf count, for consumers that want
	// to check the ⌈log₂ n⌉ proof-size invariant.
	Leaves int `json:"leaves"`
	// Siblings are the sibling hashes in lowercase hex, leaf level
	// first. len(Siblings) == ⌈log₂ Leaves⌉.
	Siblings []string `json:"siblings"`
}

// Proof returns the inclusion proof for leaf i.
func (t *Tree) Proof(i int) (*Proof, error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("%w: leaf index %d out of range (batch of %d)", ErrProof, i, t.n)
	}
	p := &Proof{LeafIndex: i, Leaves: t.n, Siblings: make([]string, 0, t.Depth())}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := level[idx^1]
		p.Siblings = append(p.Siblings, hex.EncodeToString(sib[:]))
		idx >>= 1
	}
	return p, nil
}

// VerifyInclusion checks that the certificate leaf hash sits at
// p.LeafIndex under the given root (lowercase hex). It recomputes the
// root from the sibling path — O(log n) hashes — and fails with
// ErrProof on any forgery: wrong sibling, wrong index, truncated or
// overlong path, wrong root.
func VerifyInclusion(rootHex string, leaf [32]byte, p *Proof) error {
	if p == nil {
		return fmt.Errorf("%w: missing proof", ErrProof)
	}
	if p.LeafIndex < 0 || p.LeafIndex >= 1<<len(p.Siblings) {
		return fmt.Errorf("%w: leaf index %d out of range for a depth-%d path",
			ErrProof, p.LeafIndex, len(p.Siblings))
	}
	if p.Leaves > 0 && len(p.Siblings) != ceilLog2(p.Leaves) {
		return fmt.Errorf("%w: %d siblings for a batch of %d (want ⌈log₂⌉ = %d)",
			ErrProof, len(p.Siblings), p.Leaves, ceilLog2(p.Leaves))
	}
	h := leaf
	idx := p.LeafIndex
	for _, sibHex := range p.Siblings {
		sib, err := hex.DecodeString(sibHex)
		if err != nil || len(sib) != 32 {
			return fmt.Errorf("%w: sibling %q is not a 32-byte hex hash", ErrProof, sibHex)
		}
		var s [32]byte
		copy(s[:], sib)
		if idx&1 == 0 {
			h = nodeHash(h, s)
		} else {
			h = nodeHash(s, h)
		}
		idx >>= 1
	}
	if got := hex.EncodeToString(h[:]); got != rootHex {
		return fmt.Errorf("%w: path reconstructs root %s, batch committed to %s", ErrProof, got, rootHex)
	}
	return nil
}

// ceilLog2 returns ⌈log₂ n⌉ for n ≥ 1.
func ceilLog2(n int) int {
	return bits.Len(uint(n - 1))
}
