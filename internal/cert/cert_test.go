package cert_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"replicatree/internal/cert"
	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// The test package imports internal/solver to produce real solve
// outcomes — allowed here because the no-solver-import rule applies to
// the cert package and the replicaverify binary, and test files are
// outside `go list -deps` of both.

func goldenInstance(t testing.TB, name string) *core.Instance {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	return &in
}

// solvedCert solves the instance with the named engine and certifies
// the outcome — the same Report→Certificate mapping the service uses.
func solvedCert(t testing.TB, in *core.Instance, engine string) *cert.Certificate {
	t.Helper()
	eng, err := solver.Lookup(engine)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Solve(context.Background(), solver.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	c, err := solver.Certify(in, &rep)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCertificateRoundTrip: every corpus instance × a spread of
// engines produces a certificate that verifies offline — against both
// the pointer instance and its flat twin — and survives a JSON round
// trip (the wire form) unchanged.
func TestCertificateRoundTrip(t *testing.T) {
	instances := []string{
		"binary_nod_1.json", "binary_dist_1.json", "gadget_fig4.json",
		"caterpillar_nod.json", "wide_nod.json",
	}
	engines := []string{solver.Auto, solver.MultipleGreedy, solver.ExactMultiple, solver.SingleGen}
	for _, name := range instances {
		in := goldenInstance(t, name)
		for _, engine := range engines {
			t.Run(name+"/"+engine, func(t *testing.T) {
				c := solvedCert(t, in, engine)
				if err := c.VerifyAgainst(in); err != nil {
					t.Fatalf("fresh certificate rejected: %v", err)
				}
				fi := &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
				if err := c.VerifyAgainstFlat(fi); err != nil {
					t.Fatalf("flat-twin verification rejected: %v", err)
				}

				wire, err := json.Marshal(c)
				if err != nil {
					t.Fatal(err)
				}
				var back cert.Certificate
				if err := json.Unmarshal(wire, &back); err != nil {
					t.Fatal(err)
				}
				if err := back.VerifyAgainst(in); err != nil {
					t.Fatalf("certificate rejected after JSON round trip: %v", err)
				}
				h1, err := c.HashHex()
				if err != nil {
					t.Fatal(err)
				}
				h2, err := back.HashHex()
				if err != nil {
					t.Fatal(err)
				}
				if h1 != h2 {
					t.Fatalf("leaf hash changed across the wire: %s vs %s", h1, h2)
				}
			})
		}
	}
}

// TestCertifyOptimality: exact engines proving optimality yield an
// optimality attestation; heuristics do not. When the bound is met,
// the verifier needs no attestation at all — replicas == bound is
// self-evident optimality.
func TestCertifyOptimality(t *testing.T) {
	in := goldenInstance(t, "binary_nod_1.json")
	exact := solvedCert(t, in, solver.ExactMultiple)
	if exact.Optimality == nil {
		t.Fatal("exact engine produced no optimality attestation")
	}
	if exact.Optimality.Engine != solver.ExactMultiple {
		t.Fatalf("attestation names %q, want %q", exact.Optimality.Engine, solver.ExactMultiple)
	}
	heuristic := solvedCert(t, in, solver.MultipleGreedy)
	if heuristic.Optimality != nil {
		t.Fatal("heuristic engine claimed an optimality attestation")
	}
}

// TestCertifyRecomputesSuppressedBound: the "no-lower-bound" hint zeroes
// the report's bound; the issued certificate must still carry the true
// recomputed bound so it survives its own verification.
func TestCertifyRecomputesSuppressedBound(t *testing.T) {
	in := goldenInstance(t, "binary_nod_1.json")
	eng, err := solver.Lookup(solver.MultipleGreedy)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Solve(context.Background(), solver.Request{
		Instance: in,
		Hints:    map[string]string{"no-lower-bound": "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LowerBound != 0 {
		t.Skip("hint did not suppress the bound; nothing to recompute")
	}
	c, err := solver.Certify(in, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bound.Value != core.LowerBound(in) {
		t.Fatalf("certificate bound %d, want recomputed %d", c.Bound.Value, core.LowerBound(in))
	}
	if err := c.VerifyAgainst(in); err != nil {
		t.Fatalf("certificate with recomputed bound rejected: %v", err)
	}
}

// TestCertBatchInclusion: a batch of per-instance certificates commits
// to one Merkle root and each certificate's inclusion proof verifies —
// the whole-job flow the service exposes, exercised library-side.
func TestCertBatchInclusion(t *testing.T) {
	names := []string{
		"binary_nod_1.json", "binary_nod_2.json", "binary_dist_1.json",
		"binary_dist_2.json", "gadget_fig4.json", "gadget_i2.json", "wide_nod.json",
	}
	certs := make([]*cert.Certificate, len(names))
	leaves := make([][32]byte, len(names))
	for i, name := range names {
		certs[i] = solvedCert(t, goldenInstance(t, name), solver.Auto)
		leaf, err := certs[i].Hash()
		if err != nil {
			t.Fatal(err)
		}
		leaves[i] = leaf
	}
	mt, err := cert.NewTree(leaves)
	if err != nil {
		t.Fatal(err)
	}
	root := mt.RootHex()
	for i := range certs {
		p, err := mt.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := certs[i].VerifyInclusionOf(root, p); err != nil {
			t.Fatalf("leaf %d: inclusion rejected: %v", i, err)
		}
		// The same proof must not vouch for a different certificate.
		if err := certs[(i+1)%len(certs)].VerifyInclusionOf(root, p); err == nil {
			t.Fatalf("leaf %d: proof accepted for the wrong certificate", i)
		}
	}
}
