// Command gengolden regenerates internal/cert/testdata/golden_v1.hex,
// the pinned canonical encoding of cert.GoldenCertificate. Run it via
// `go generate ./internal/cert/...` after an intentional encoding
// change (which must also bump cert.Version); the corpus-drift CI job
// fails when the checked-in bytes no longer match the code.
package main

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"replicatree/internal/cert"
)

func main() {
	enc, err := cert.Encode(cert.GoldenCertificate())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengolden: %v\n", err)
		os.Exit(1)
	}
	out := filepath.Join("testdata", "golden_v1.hex")
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "gengolden: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, []byte(hex.EncodeToString(enc)+"\n"), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "gengolden: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes encoded)\n", out, len(enc))
}
