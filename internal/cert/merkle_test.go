package cert_test

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math/bits"
	"strings"
	"testing"

	"replicatree/internal/cert"
)

func syntheticLeaves(n int) [][32]byte {
	leaves := make([][32]byte, n)
	for i := range leaves {
		var seed [8]byte
		binary.BigEndian.PutUint64(seed[:], uint64(i))
		leaves[i] = sha256.Sum256(seed[:])
	}
	return leaves
}

// TestProofSizeProperty pins the acceptance invariant: for every batch
// size n = 1…512, every inclusion proof is exactly ⌈log₂ n⌉ sibling
// hashes, and every proof verifies against the root.
func TestProofSizeProperty(t *testing.T) {
	for n := 1; n <= 512; n++ {
		leaves := syntheticLeaves(n)
		mt, err := cert.NewTree(leaves)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := bits.Len(uint(n - 1)) // ⌈log₂ n⌉, 0 for n=1
		if mt.Depth() != want {
			t.Fatalf("n=%d: tree depth %d, want ⌈log₂ n⌉ = %d", n, mt.Depth(), want)
		}
		root := mt.RootHex()
		for i := 0; i < n; i++ {
			p, err := mt.Proof(i)
			if err != nil {
				t.Fatalf("n=%d leaf=%d: %v", n, i, err)
			}
			if len(p.Siblings) != want {
				t.Fatalf("n=%d leaf=%d: proof has %d siblings, want %d", n, i, len(p.Siblings), want)
			}
			if err := cert.VerifyInclusion(root, leaves[i], p); err != nil {
				t.Fatalf("n=%d leaf=%d: valid proof rejected: %v", n, i, err)
			}
		}
	}
}

func TestMerkleDeterministicRoot(t *testing.T) {
	a, err := cert.NewTree(syntheticLeaves(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cert.NewTree(syntheticLeaves(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.RootHex() != b.RootHex() {
		t.Fatal("same leaves, different roots")
	}
	// Padding must not make a 7-leaf batch collide with an 8-leaf one.
	c, err := cert.NewTree(syntheticLeaves(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.RootHex() == c.RootHex() {
		t.Fatal("7-leaf and 8-leaf batches share a root")
	}
}

func TestMerkleProofTampering(t *testing.T) {
	leaves := syntheticLeaves(10)
	mt, err := cert.NewTree(leaves)
	if err != nil {
		t.Fatal(err)
	}
	root := mt.RootHex()
	fresh := func(i int) *cert.Proof {
		p, err := mt.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := map[string]struct {
		leaf  [32]byte
		proof *cert.Proof
		root  string
	}{
		"wrong-leaf": {leaves[4], fresh(3), root},
		"forged-sibling": {leaves[3], func() *cert.Proof {
			p := fresh(3)
			p.Siblings[1] = strings.Repeat("ab", 32)
			return p
		}(), root},
		"wrong-index": {leaves[3], func() *cert.Proof {
			p := fresh(3)
			p.LeafIndex = 5
			return p
		}(), root},
		"truncated-path": {leaves[3], func() *cert.Proof {
			p := fresh(3)
			p.Siblings = p.Siblings[:len(p.Siblings)-1]
			return p
		}(), root},
		"overlong-path": {leaves[3], func() *cert.Proof {
			p := fresh(3)
			p.Siblings = append(p.Siblings, p.Siblings[0])
			return p
		}(), root},
		"garbage-sibling": {leaves[3], func() *cert.Proof {
			p := fresh(3)
			p.Siblings[0] = "not-hex"
			return p
		}(), root},
		"wrong-root": {leaves[3], fresh(3), strings.Repeat("cd", 32)},
		"nil-proof":  {leaves[3], nil, root},
		"negative-index": {leaves[3], func() *cert.Proof {
			p := fresh(3)
			p.LeafIndex = -1
			return p
		}(), root},
	}
	for name, tc := range cases {
		err := cert.VerifyInclusion(tc.root, tc.leaf, tc.proof)
		if !errors.Is(err, cert.ErrProof) {
			t.Errorf("%s: want ErrProof, got %v", name, err)
		}
	}
}

func TestMerkleEdges(t *testing.T) {
	if _, err := cert.NewTree(nil); !errors.Is(err, cert.ErrMalformed) {
		t.Errorf("empty batch: want ErrMalformed, got %v", err)
	}
	mt, err := cert.NewTree(syntheticLeaves(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 5, 100} {
		if _, err := mt.Proof(i); !errors.Is(err, cert.ErrProof) {
			t.Errorf("proof(%d): want ErrProof, got %v", i, err)
		}
	}
	if mt.Len() != 5 {
		t.Errorf("Len() = %d, want 5 (padding must not leak into the leaf count)", mt.Len())
	}
}
