package cert_test

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"replicatree/internal/cert"
	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// TestEncodeGoldenBytes pins the canonical encoding byte-for-byte
// against testdata/golden_v1.hex. Any drift here is a breaking change
// to every persisted certificate and Merkle root: bump cert.Version
// and regenerate with `go generate ./internal/cert/...` only on
// purpose.
func TestEncodeGoldenBytes(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_v1.hex"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := cert.Encode(cert.GoldenCertificate())
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(enc); got != strings.TrimSpace(string(want)) {
		t.Fatalf("canonical encoding drifted from testdata/golden_v1.hex:\n got %s\nwant %s", got, strings.TrimSpace(string(want)))
	}
	if !bytes.HasPrefix(enc, []byte("RTCERT")) {
		t.Fatal("encoding does not start with the RTCERT magic")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := cert.Encode(cert.GoldenCertificate())
	if err != nil {
		t.Fatal(err)
	}
	b, err := cert.Encode(cert.GoldenCertificate())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same certificate differ")
	}
	h1, err := cert.GoldenCertificate().HashHex()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := cert.GoldenCertificate().HashHex()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("leaf hash unstable or malformed: %q vs %q", h1, h2)
	}
}

// TestEncodeCoversEveryField: flipping any encoded field must change
// the bytes — otherwise the Merkle commitment would not bind it.
func TestEncodeCoversEveryField(t *testing.T) {
	base, err := cert.Encode(cert.GoldenCertificate())
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(c *cert.Certificate){
		"instance-hash": func(c *cert.Certificate) {
			c.InstanceHash = strings.Repeat("ab", 32)
		},
		"engine":     func(c *cert.Certificate) { c.Engine = "other-engine" },
		"policy":     func(c *cert.Certificate) { c.Policy = core.Single.String() },
		"replicas":   func(c *cert.Certificate) { c.Replicas++ },
		"work":       func(c *cert.Certificate) { c.Work++ },
		"bound":      func(c *cert.Certificate) { c.Bound.Value++ },
		"optimality": func(c *cert.Certificate) { c.Optimality = nil },
		"optimality-engine": func(c *cert.Certificate) {
			c.Optimality.Engine = "someone-else"
		},
		"witness-replica": func(c *cert.Certificate) { c.Witness.Replicas[0]++ },
		"witness-assignment": func(c *cert.Certificate) {
			c.Witness.Assignments[1].Amount++
		},
	}
	for name, mutate := range mutations {
		c := cert.GoldenCertificate()
		mutate(c)
		enc, err := cert.Encode(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bytes.Equal(enc, base) {
			t.Errorf("%s: mutation did not change the canonical encoding", name)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	for name, mutate := range map[string]func(c *cert.Certificate){
		"bad-hash":       func(c *cert.Certificate) { c.InstanceHash = "zz" },
		"no-witness":     func(c *cert.Certificate) { c.Witness = nil },
		"unknown-policy": func(c *cert.Certificate) { c.Policy = "Quorum" },
		"overlong-engine": func(c *cert.Certificate) {
			c.Engine = strings.Repeat("x", 1<<16)
		},
	} {
		c := cert.GoldenCertificate()
		mutate(c)
		if _, err := cert.Encode(c); err == nil {
			t.Errorf("%s: Encode accepted a malformed certificate", name)
		}
	}
}

// TestGoldenCertificateValidates: the pinned fixture itself must be
// internally consistent, or the golden bytes pin a cert no verifier
// would accept.
func TestGoldenCertificateValidates(t *testing.T) {
	if err := cert.GoldenCertificate().Validate(); err != nil {
		t.Fatal(err)
	}
	g := cert.GoldenCertificate()
	if g.Witness.Replicas[0] != tree.NodeID(0) {
		t.Fatal("fixture witness drifted") // keep the fixture stable on purpose
	}
}
