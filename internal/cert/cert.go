// Package cert implements verifiable placement certificates: compact,
// independently checkable receipts for solved replica placement
// instances. A Certificate commits to the canonical instance hash and
// carries a feasibility witness (the placement itself, replayable
// through the allocation-free core.Scratch.Verify twin), a lower-bound
// attestation (the subtree-sum bound, recomputable from the instance
// in O(tree)), the engine/policy/work provenance and — when an exact
// peer proved optimality — an optimality attestation.
//
// Certificates have a canonical deterministic byte encoding (Encode)
// hashed with SHA-256; batches of certificates commit to one binary
// Merkle root (Tree) so any single result carries an O(log n)
// inclusion proof (Proof).
//
// The package deliberately imports only internal/core and
// internal/tree — never internal/solver — so an offline checker
// (cmd/replicaverify) can validate certificates without linking any
// solving code: verification cost is O(tree), not a re-solve. The
// service layer maps solver.Report onto a Certificate; this package
// never sees a Report.
package cert

import (
	"errors"
	"fmt"

	"replicatree/internal/core"
)

// Version is the certificate format version, bumped whenever the
// canonical encoding of Encode changes. Verifiers reject versions
// they do not understand rather than guessing.
const Version = 1

// BoundKindSubtreeSum is the only lower-bound attestation kind today:
// the distance-aware subtree-sum bound of core.LowerBound (identical
// to the flat-form core.Scratch.LowerBound the decomp path reports).
const BoundKindSubtreeSum = "subtree-sum"

// Sentinel verification errors. Verification wraps them with context;
// classify with errors.Is.
var (
	// ErrMalformed: the certificate is structurally invalid (bad
	// version, unknown policy or bound kind, missing witness, replica
	// count not matching the witness, malformed hash).
	ErrMalformed = errors.New("cert: malformed certificate")
	// ErrInstanceHash: the certificate commits to a different instance
	// than the one presented for verification.
	ErrInstanceHash = errors.New("cert: instance hash mismatch")
	// ErrWitness: the feasibility witness does not verify against the
	// instance (moved replica, over-capacity server, uncovered client,
	// distance violation…). Wraps the core sentinel that failed.
	ErrWitness = errors.New("cert: feasibility witness rejected")
	// ErrBound: the attested lower bound does not equal the bound
	// recomputed from the instance (inflated or deflated).
	ErrBound = errors.New("cert: lower-bound attestation rejected")
	// ErrGap: the reported gap is inconsistent with the replica count
	// and the attested bound.
	ErrGap = errors.New("cert: gap inconsistent")
	// ErrProof: an inclusion proof does not connect the certificate to
	// the claimed Merkle root (forged sibling, wrong index, truncated
	// or overlong path).
	ErrProof = errors.New("cert: inclusion proof rejected")
)

// Certificate is one solve's verifiable receipt.
type Certificate struct {
	// Version is the certificate format version (see Version).
	Version int `json:"version"`
	// InstanceHash is the canonical instance hash the certificate
	// commits to (core.Instance.CanonicalHash, lowercase hex).
	InstanceHash string `json:"instance_hash"`
	// Engine names the engine that produced the solution.
	Engine string `json:"engine"`
	// Policy is the access policy the witness obeys: "Single" or
	// "Multiple".
	Policy string `json:"policy"`
	// Replicas is the claimed objective value; it must equal the
	// witness's replica count.
	Replicas int `json:"replicas"`
	// Work counts the engine's elementary search steps (0 when
	// untracked). Provenance only — not independently checkable.
	Work int64 `json:"work,omitempty"`
	// Bound is the lower-bound attestation.
	Bound BoundAttestation `json:"bound"`
	// Gap is (Replicas − Bound.Value) / Bound.Value, the honestly
	// reported optimality gap (0 when the bound is met; decomp-path
	// certificates report their structural gap here rather than
	// hiding it).
	Gap float64 `json:"gap"`
	// Optimality, when present, attests that an exact engine proved
	// the witness optimal for the policy. It is provenance, not an
	// independently checkable proof — see the trust model in
	// DESIGN.md. (When Replicas == Bound.Value the verifier can
	// conclude optimality on its own, with no trust needed.)
	Optimality *OptimalityAttestation `json:"optimality,omitempty"`
	// Witness is the feasibility witness: the full placement, in
	// normalized form (sorted replicas, merged assignments).
	Witness *core.Solution `json:"witness"`
}

// BoundAttestation is the lower-bound block of a certificate: the
// claimed bound plus the data needed to recheck it. For the
// subtree-sum kind the recheck input is the instance itself (pinned
// by InstanceHash): a verifier recomputes the bound in O(tree) with
// core.Scratch.LowerBound and demands equality.
type BoundAttestation struct {
	// Kind names the bound (BoundKindSubtreeSum).
	Kind string `json:"kind"`
	// Value is the attested lower bound on the optimal replica count.
	Value int `json:"value"`
}

// OptimalityAttestation records which exact engine certified the
// witness optimal and how much search work the certification consumed.
type OptimalityAttestation struct {
	// Engine names the exact engine (or exact portfolio peer) that
	// proved optimality.
	Engine string `json:"engine"`
	// Work is that engine's consumed search budget, when tracked.
	Work int64 `json:"work,omitempty"`
}

// policyNumber maps the wire policy name onto core.Policy.
func policyNumber(name string) (core.Policy, error) {
	switch name {
	case core.Single.String():
		return core.Single, nil
	case core.Multiple.String():
		return core.Multiple, nil
	default:
		return 0, fmt.Errorf("%w: unknown policy %q", ErrMalformed, name)
	}
}

// Validate checks the certificate's internal consistency — everything
// that can be checked without the instance: version, policy and bound
// kind, hash shape, witness presence, the replica count matching the
// witness, and the gap matching (Replicas, Bound). It is the first
// stage of every verification.
func (c *Certificate) Validate() error {
	if c.Version != Version {
		return fmt.Errorf("%w: unsupported version %d (verifier speaks %d)", ErrMalformed, c.Version, Version)
	}
	if _, err := decodeHash(c.InstanceHash); err != nil {
		return err
	}
	if _, err := policyNumber(c.Policy); err != nil {
		return err
	}
	if c.Bound.Kind != BoundKindSubtreeSum {
		return fmt.Errorf("%w: unknown bound kind %q", ErrMalformed, c.Bound.Kind)
	}
	if c.Witness == nil {
		return fmt.Errorf("%w: missing feasibility witness", ErrMalformed)
	}
	if c.Replicas != c.Witness.NumReplicas() {
		return fmt.Errorf("%w: claims %d replicas but witness places %d",
			ErrMalformed, c.Replicas, c.Witness.NumReplicas())
	}
	if err := checkGap(c.Replicas, c.Bound.Value, c.Gap); err != nil {
		return err
	}
	return nil
}

// gapTolerance absorbs float re-derivation noise; gaps are quotients
// of small integers, so any real tampering is far outside it.
const gapTolerance = 1e-9

func checkGap(replicas, bound int, gap float64) error {
	want := 0.0
	if bound > 0 {
		want = float64(replicas-bound) / float64(bound)
	}
	diff := gap - want
	if diff < -gapTolerance || diff > gapTolerance {
		return fmt.Errorf("%w: reported gap %.9f, recomputed %.9f from %d replicas over bound %d",
			ErrGap, gap, want, replicas, bound)
	}
	return nil
}
