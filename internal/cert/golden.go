package cert

import (
	"replicatree/internal/core"
	"replicatree/internal/tree"
)

//go:generate go run ./gengolden

// GoldenCertificate returns the fixed certificate whose canonical
// encoding is pinned byte-for-byte in testdata/golden_v1.hex. It
// exercises every encoded field, including the optional optimality
// attestation. The fixture is shared by the golden-bytes test and the
// go:generate regenerator (./gengolden); the corpus-drift CI job
// fails when the encoding of this value drifts from the checked-in
// bytes — the contract that certificates stay byte-reproducible
// across Go versions and platforms.
func GoldenCertificate() *Certificate {
	return &Certificate{
		Version:      Version,
		InstanceHash: "9c3f8a5b1e2d4c6f8091a2b3c4d5e6f70123456789abcdef0123456789abcdef",
		Engine:       "exact-multiple",
		Policy:       "Multiple",
		Replicas:     3,
		Work:         12345,
		Bound:        BoundAttestation{Kind: BoundKindSubtreeSum, Value: 2},
		Gap:          0.5,
		Optimality:   &OptimalityAttestation{Engine: "exact-multiple", Work: 12345},
		Witness: &core.Solution{
			Replicas: []tree.NodeID{0, 2, 5},
			Assignments: []core.Assignment{
				{Client: 3, Server: 0, Amount: 4},
				{Client: 4, Server: 2, Amount: 7},
				{Client: 6, Server: 5, Amount: 9},
			},
		},
	}
}
