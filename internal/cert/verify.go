package cert

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// Offline certificate verification. The verifier holds the instance
// (pinned by the certificate's canonical hash) and replays:
//
//  1. structural consistency (Validate),
//  2. the instance commitment — CanonicalHash(instance) must equal
//     the certificate's InstanceHash,
//  3. the feasibility witness — the placement re-verified through the
//     allocation-free core.Scratch.Verify twin,
//  4. the lower-bound attestation — the subtree-sum bound recomputed
//     with core.Scratch.LowerBound must equal the attested value
//     (catching both inflated and deflated bounds),
//  5. the gap — recomputed from (Replicas, Bound.Value).
//
// Total cost is O(tree): hashing, one verify sweep and one bound
// sweep. No solver is consulted — which is the point.

// VerifyAgainst fully verifies the certificate against a pointer-tree
// instance. A nil error means: the witness is a feasible placement of
// exactly Replicas replicas for this instance under Policy, and the
// optimum cannot be below Bound.Value.
func (c *Certificate) VerifyAgainst(in *core.Instance) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := in.Validate(); err != nil {
		return fmt.Errorf("%w: presented instance invalid: %v", ErrMalformed, err)
	}
	if got := in.CanonicalHash(); got != c.InstanceHash {
		return fmt.Errorf("%w: certificate commits to %s, presented instance hashes to %s",
			ErrInstanceHash, c.InstanceHash, got)
	}
	return c.verifyFlat(tree.Flatten(in.Tree), in)
}

// VerifyAgainstFlat fully verifies the certificate against a flat
// (SoA) instance — the huge-tree path: a streamed million-node
// instance verifies without ever materialising a pointer tree.
func (c *Certificate) VerifyAgainstFlat(fi *core.FlatInstance) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := fi.Validate(); err != nil {
		return fmt.Errorf("%w: presented instance invalid: %v", ErrMalformed, err)
	}
	if got := fi.CanonicalHash(); got != c.InstanceHash {
		return fmt.Errorf("%w: certificate commits to %s, presented instance hashes to %s",
			ErrInstanceHash, c.InstanceHash, got)
	}
	// Scratch.LowerBound/Verify read only W and DMax off the instance
	// parameter; the tree arrives as the Flat.
	params := &core.Instance{W: fi.W, DMax: fi.DMax}
	return c.verifyFlat(fi.Flat, params)
}

// verifyFlat is the shared witness + bound replay over the flat twin.
// params supplies W and DMax (its Tree field is not consulted).
func (c *Certificate) verifyFlat(f *tree.Flat, params *core.Instance) error {
	pol, err := policyNumber(c.Policy)
	if err != nil {
		return err
	}
	var sc core.Scratch
	if err := sc.Verify(f, params, pol, c.Witness); err != nil {
		return fmt.Errorf("%w: %v", ErrWitness, err)
	}
	if got := sc.LowerBound(f, params); got != c.Bound.Value {
		return fmt.Errorf("%w: attested %d, recomputed %d", ErrBound, c.Bound.Value, got)
	}
	return nil
}

// VerifyInclusionOf is the one-call batch check: the certificate's
// leaf hash is recomputed from its canonical encoding and checked
// against the root through the proof. It does not touch the instance;
// pair it with VerifyAgainst for the full replay.
func (c *Certificate) VerifyInclusionOf(rootHex string, p *Proof) error {
	leaf, err := c.Hash()
	if err != nil {
		return err
	}
	return VerifyInclusion(rootHex, leaf, p)
}
